use eplace_geometry::{Point, Rect, Size};
use std::fmt;

/// Index of a [`Cell`] within [`Design::cells`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub u32);

impl CellId {
    /// The cell's index into [`Design::cells`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Index of a [`Net`] within [`Design::nets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub u32);

impl NetId {
    /// The net's index into [`Design::nets`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The topological category of a placement object.
///
/// ePlace's contribution is that the optimizer treats every movable kind
/// identically; the kind still matters for flow staging (which objects mLG
/// legalizes, which cDP legalizes) and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Row-height standard cell.
    StdCell,
    /// Multi-row block; movable in MMS-style designs, fixed otherwise.
    Macro,
    /// Fixed IO/terminal block (never moves).
    Terminal,
    /// Whitespace filler inserted by the global placer (paper §III); carries
    /// no pins.
    Filler,
}

impl CellKind {
    /// Whether objects of this kind connect to nets.
    #[inline]
    pub fn has_pins(self) -> bool {
        !matches!(self, CellKind::Filler)
    }
}

/// A placement object: standard cell, macro, fixed terminal or filler.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Instance name (unique within the design).
    pub name: String,
    /// Physical outline dimensions.
    pub size: Size,
    /// Category of the object.
    pub kind: CellKind,
    /// `true` when the object must not move (terminals always; macros in
    /// std-cell-only suites; std cells during mLG).
    pub fixed: bool,
    /// Current center position.
    pub pos: Point,
}

impl Cell {
    /// The cell's area — its electric quantity `q_i` in the electrostatic
    /// analogy (Eq. 5).
    #[inline]
    pub fn area(&self) -> f64 {
        self.size.area()
    }

    /// The cell outline as a rectangle around the current position.
    #[inline]
    pub fn rect(&self) -> Rect {
        Rect::from_center(self.pos, self.size.width, self.size.height)
    }

    /// Whether this object participates in optimization.
    #[inline]
    pub fn is_movable(&self) -> bool {
        !self.fixed
    }
}

/// One connection point of a net: the owning cell plus the pin's offset from
/// the cell **center** (Bookshelf convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pin {
    /// Owning cell.
    pub cell: CellId,
    /// Offset of the pin from the owner's center.
    pub offset: Point,
}

impl Pin {
    /// Creates a pin on `cell` at `offset` from the cell center.
    #[inline]
    pub fn new(cell: CellId, offset: Point) -> Self {
        Pin { cell, offset }
    }
}

/// A hyperedge of the netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Connection points.
    pub pins: Vec<Pin>,
    /// Net weight from the `.wts` file (1.0 in all contest suites).
    pub weight: f64,
}

impl Net {
    /// Number of pins on the net (its *degree*).
    #[inline]
    pub fn degree(&self) -> usize {
        self.pins.len()
    }
}

/// One standard-cell row from the `.scl` file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Left edge of the row.
    pub x: f64,
    /// Bottom edge of the row.
    pub y: f64,
    /// Total row width (`num_sites × site_width`).
    pub width: f64,
    /// Row (and standard-cell) height.
    pub height: f64,
    /// Width of one placement site.
    pub site_width: f64,
}

impl Row {
    /// The row outline.
    #[inline]
    pub fn rect(&self) -> Rect {
        Rect::new(self.x, self.y, self.x + self.width, self.y + self.height)
    }
}

/// A complete placement instance: netlist + region + rows + density target.
#[derive(Debug, Clone)]
pub struct Design {
    /// Benchmark name.
    pub name: String,
    /// All placement objects. Fillers, when present, are appended after the
    /// original netlist objects.
    pub cells: Vec<Cell>,
    /// All nets.
    pub nets: Vec<Net>,
    /// The placement region `R`.
    pub region: Rect,
    /// Standard-cell rows decomposing the region.
    pub rows: Vec<Row>,
    /// Benchmark density upper bound `ρ_t` (1.0 when unconstrained).
    pub target_density: f64,
    /// For every cell, the nets incident to it; `cell_nets[i].len()` is the
    /// vertex degree `|E_i|` used by the preconditioner (Eq. 12).
    pub cell_nets: Vec<Vec<NetId>>,
}

impl Design {
    /// Rebuilds [`Design::cell_nets`] from the current net list. Call after
    /// bulk-editing nets.
    pub fn rebuild_cell_nets(&mut self) {
        let mut incident = vec![Vec::new(); self.cells.len()];
        for (ni, net) in self.nets.iter().enumerate() {
            for pin in &net.pins {
                let list: &mut Vec<NetId> = &mut incident[pin.cell.index()];
                if list.last() != Some(&NetId(ni as u32)) {
                    list.push(NetId(ni as u32));
                }
            }
        }
        self.cell_nets = incident;
    }

    /// Absolute position of a pin at the current placement.
    #[inline]
    pub fn pin_position(&self, pin: &Pin) -> Point {
        self.cells[pin.cell.index()].pos + pin.offset
    }

    /// Half-perimeter wirelength of one net at the current placement (Eq. 1),
    /// including the net weight.
    pub fn net_hpwl(&self, net: &Net) -> f64 {
        if net.pins.len() < 2 {
            return 0.0;
        }
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for pin in &net.pins {
            let p = self.pin_position(pin);
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        net.weight * ((max_x - min_x) + (max_y - min_y))
    }

    /// Total half-perimeter wirelength `W(v)` (Eq. 1).
    pub fn hpwl(&self) -> f64 {
        self.nets.iter().map(|n| self.net_hpwl(n)).sum()
    }

    /// HPWL the design would have if cell `i` sat at `positions[i]`, without
    /// mutating the current placement. Walks nets and pins in the same order
    /// as [`Design::hpwl`], so a call with the current positions reproduces
    /// [`Design::hpwl`] bit for bit — the property the known-optimum
    /// certificates of `eplace-benchgen` rely on.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is shorter than [`Design::cells`].
    pub fn hpwl_with_positions(&self, positions: &[Point]) -> f64 {
        assert!(
            positions.len() >= self.cells.len(),
            "positions slice shorter than cell list"
        );
        self.nets
            .iter()
            .map(|net| {
                if net.pins.len() < 2 {
                    return 0.0;
                }
                let mut min_x = f64::INFINITY;
                let mut max_x = f64::NEG_INFINITY;
                let mut min_y = f64::INFINITY;
                let mut max_y = f64::NEG_INFINITY;
                for pin in &net.pins {
                    let p = positions[pin.cell.index()] + pin.offset;
                    min_x = min_x.min(p.x);
                    max_x = max_x.max(p.x);
                    min_y = min_y.min(p.y);
                    max_y = max_y.max(p.y);
                }
                net.weight * ((max_x - min_x) + (max_y - min_y))
            })
            .sum()
    }

    /// Iterator over indexes of movable cells.
    pub fn movable_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_movable())
            .map(|(i, _)| i)
    }

    /// Total area of movable objects.
    pub fn movable_area(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.is_movable())
            .map(|c| c.area())
            .sum()
    }

    /// Area of fixed objects clipped to the placement region.
    pub fn fixed_area_in_region(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.fixed)
            .map(|c| c.rect().overlap_area(&self.region))
            .sum()
    }

    /// Free area available for movable objects: region minus clipped fixed
    /// blockages. The filler budget (paper §III) is
    /// `ρ_t · whitespace − movable_area`.
    pub fn whitespace_area(&self) -> f64 {
        (self.region.area() - self.fixed_area_in_region()).max(0.0)
    }

    /// Utilization of the design: movable area over whitespace.
    pub fn utilization(&self) -> f64 {
        let ws = self.whitespace_area();
        if ws <= 0.0 {
            return f64::INFINITY;
        }
        self.movable_area() / ws
    }

    /// Outlines of all movable macros at the current placement — the inputs
    /// to the macro-overlap metrics of mLG.
    pub fn movable_macro_rects(&self) -> Vec<Rect> {
        self.cells
            .iter()
            .filter(|c| c.kind == CellKind::Macro && c.is_movable())
            .map(|c| c.rect())
            .collect()
    }

    /// Number of objects whose kind matches `kind`.
    pub fn count_kind(&self, kind: CellKind) -> usize {
        self.cells.iter().filter(|c| c.kind == kind).count()
    }

    /// Removes all filler cells (they are always a suffix of `cells`) and
    /// returns how many were removed. Fillers carry no pins, so nets are
    /// unaffected.
    pub fn remove_fillers(&mut self) -> usize {
        let keep = self
            .cells
            .iter()
            .position(|c| c.kind == CellKind::Filler)
            .unwrap_or(self.cells.len());
        let removed = self.cells.len() - keep;
        self.cells.truncate(keep);
        self.cell_nets.truncate(keep);
        removed
    }

    /// Validates internal consistency (pin indices in range, fillers pinless,
    /// fillers form a suffix, sizes positive). Returns a description of the
    /// first violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        for (ni, net) in self.nets.iter().enumerate() {
            for pin in &net.pins {
                let ci = pin.cell.index();
                if ci >= self.cells.len() {
                    return Err(format!("net {ni} references missing cell {ci}"));
                }
                if self.cells[ci].kind == CellKind::Filler {
                    return Err(format!("net {ni} connects to filler cell {ci}"));
                }
            }
        }
        let mut seen_filler = false;
        for (i, cell) in self.cells.iter().enumerate() {
            if cell.size.width <= 0.0 || cell.size.height <= 0.0 {
                return Err(format!("cell {i} ({}) has non-positive size", cell.name));
            }
            match cell.kind {
                CellKind::Filler => seen_filler = true,
                _ if seen_filler => {
                    return Err(format!("non-filler cell {i} appears after fillers"));
                }
                _ => {}
            }
        }
        if self.cell_nets.len() != self.cells.len() {
            return Err("cell_nets length differs from cells".into());
        }
        if !self.region.is_valid() {
            return Err("placement region is degenerate".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignBuilder;

    fn two_cell_design() -> Design {
        let mut b = DesignBuilder::new("t", Rect::new(0.0, 0.0, 100.0, 50.0));
        let a = b.add_cell("a", 2.0, 2.0, CellKind::StdCell);
        let c = b.add_cell("b", 2.0, 2.0, CellKind::StdCell);
        b.add_net("n", vec![(a, Point::ORIGIN), (c, Point::ORIGIN)]);
        let mut d = b.build();
        d.cells[0].pos = Point::new(10.0, 10.0);
        d.cells[1].pos = Point::new(20.0, 30.0);
        d
    }

    #[test]
    fn hpwl_two_pin() {
        let d = two_cell_design();
        assert_eq!(d.hpwl(), 30.0);
    }

    #[test]
    fn hpwl_with_positions_matches_hpwl_bitwise() {
        let d = two_cell_design();
        let pos: Vec<Point> = d.cells.iter().map(|c| c.pos).collect();
        assert_eq!(d.hpwl_with_positions(&pos).to_bits(), d.hpwl().to_bits());
        // And a shifted placement is evaluated without mutating the design.
        let moved: Vec<Point> = pos.iter().map(|p| Point::new(p.x + 5.0, p.y)).collect();
        assert_eq!(d.hpwl_with_positions(&moved), d.hpwl());
        assert_eq!(d.cells[0].pos, Point::new(10.0, 10.0));
    }

    #[test]
    fn hpwl_respects_pin_offsets() {
        let mut d = two_cell_design();
        d.nets[0].pins[0].offset = Point::new(1.0, 0.0);
        assert_eq!(d.hpwl(), 29.0);
    }

    #[test]
    fn hpwl_respects_weights() {
        let mut d = two_cell_design();
        d.nets[0].weight = 2.0;
        assert_eq!(d.hpwl(), 60.0);
    }

    #[test]
    fn single_pin_net_is_zero_length() {
        let mut b = DesignBuilder::new("t", Rect::new(0.0, 0.0, 10.0, 10.0));
        let a = b.add_cell("a", 1.0, 1.0, CellKind::StdCell);
        b.add_net("n", vec![(a, Point::ORIGIN)]);
        assert_eq!(b.build().hpwl(), 0.0);
    }

    #[test]
    fn areas_and_utilization() {
        let mut b = DesignBuilder::new("t", Rect::new(0.0, 0.0, 10.0, 10.0));
        b.add_cell("m", 4.0, 4.0, CellKind::StdCell);
        let t = b.add_cell("io", 2.0, 2.0, CellKind::Terminal);
        let mut d = b.build();
        d.cells[t.index()].pos = Point::new(9.0, 9.0); // half sticks out
        assert_eq!(d.movable_area(), 16.0);
        assert_eq!(d.fixed_area_in_region(), 4.0); // clipped to 2x2 quadrant... full 2x2 fits
        assert_eq!(d.whitespace_area(), 96.0);
        assert!((d.utilization() - 16.0 / 96.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_area_clipping() {
        let mut b = DesignBuilder::new("t", Rect::new(0.0, 0.0, 10.0, 10.0));
        let t = b.add_cell("io", 4.0, 4.0, CellKind::Terminal);
        let mut d = b.build();
        // Center on the region corner: only one quadrant (2x2) inside.
        d.cells[t.index()].pos = Point::new(10.0, 10.0);
        assert_eq!(d.fixed_area_in_region(), 4.0);
    }

    #[test]
    fn remove_fillers_truncates_suffix() {
        let mut b = DesignBuilder::new("t", Rect::new(0.0, 0.0, 10.0, 10.0));
        b.add_cell("a", 1.0, 1.0, CellKind::StdCell);
        b.add_cell("f1", 1.0, 1.0, CellKind::Filler);
        b.add_cell("f2", 1.0, 1.0, CellKind::Filler);
        let mut d = b.build();
        assert_eq!(d.remove_fillers(), 2);
        assert_eq!(d.cells.len(), 1);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn validate_rejects_filler_with_pins() {
        let mut d = two_cell_design();
        d.cells[1].kind = CellKind::Filler;
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_pin() {
        let mut d = two_cell_design();
        d.nets[0].pins[0].cell = CellId(99);
        assert!(d.validate().is_err());
    }

    #[test]
    fn cell_rect_is_centered() {
        let d = two_cell_design();
        let r = d.cells[0].rect();
        assert_eq!(r.center(), d.cells[0].pos);
        assert_eq!(r.area(), 4.0);
    }

    #[test]
    fn degree_bookkeeping() {
        let d = two_cell_design();
        assert_eq!(d.cell_nets[0].len(), 1);
        assert_eq!(d.cell_nets[1].len(), 1);
        assert_eq!(d.nets[0].degree(), 2);
    }
}
