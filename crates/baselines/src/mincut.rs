use crate::{measure_overflow, GlobalPlacer, GpResult};
use eplace_geometry::{Point, Rect};
use eplace_netlist::{Design, NetId};
use std::time::Instant;

/// A Capo-style min-cut placer: recursive bisection with
/// Fiduccia–Mattheyses (FM) refinement and terminal propagation.
///
/// Each region is split across its longer dimension; the cells are
/// partitioned to balance area, an FM pass (gain buckets, best-prefix
/// rollback, ±balance tolerance) reduces the number of cut nets, and the
/// halves recurse until regions hold a handful of cells, which are then
/// placed on a grid inside their region.
///
/// Min-cut commits to early partitions that global analytic optimization
/// would revisit — the suboptimality the paper's §I attributes to the
/// family and Tables I–III quantify.
#[derive(Debug, Clone, PartialEq)]
pub struct MincutPlacer {
    /// Stop recursing below this many cells.
    pub leaf_size: usize,
    /// Allowed area imbalance per cut (fraction of the region's movable
    /// area).
    pub balance_tolerance: f64,
    /// FM passes per bisection.
    pub fm_passes: usize,
}

impl Default for MincutPlacer {
    fn default() -> Self {
        MincutPlacer {
            leaf_size: 8,
            balance_tolerance: 0.12,
            fm_passes: 2,
        }
    }
}

impl GlobalPlacer for MincutPlacer {
    fn name(&self) -> &'static str {
        "mincut"
    }

    fn global_place(&self, design: &mut Design) -> GpResult {
        let start = Instant::now();
        let movables: Vec<usize> = design.movable_indices().collect();
        let mut cuts = 0;
        if !movables.is_empty() {
            self.recurse(design, design.region, movables, 0, &mut cuts);
        }
        GpResult {
            hpwl: design.hpwl(),
            overflow: measure_overflow(design),
            iterations: cuts,
            seconds: start.elapsed().as_secs_f64(),
            line_search_seconds: 0.0,
        }
    }
}

impl MincutPlacer {
    fn recurse(
        &self,
        design: &mut Design,
        region: Rect,
        cells: Vec<usize>,
        depth: usize,
        cuts: &mut usize,
    ) {
        if cells.len() <= self.leaf_size || depth > 40 {
            place_leaf(design, region, &cells);
            return;
        }
        *cuts += 1;
        let vertical = region.width() >= region.height(); // split along x?
        let (left_region, right_region) = split_region(region, vertical);

        // Initial balanced partition by coordinate.
        let mut order = cells.clone();
        order.sort_by(|&a, &b| {
            let ka = coord(design.cells[a].pos, vertical);
            let kb = coord(design.cells[b].pos, vertical);
            ka.total_cmp(&kb)
        });
        let total_area: f64 = order.iter().map(|&c| design.cells[c].area()).sum();
        let mut side = vec![false; order.len()]; // false = left
        let mut acc = 0.0;
        for (k, &c) in order.iter().enumerate() {
            if acc >= 0.5 * total_area {
                side[k] = true;
            }
            acc += design.cells[c].area();
        }

        // FM refinement on the subproblem.
        let sub = Subproblem::build(design, &order, region, vertical);
        let max_imbalance = self.balance_tolerance * total_area;
        for _ in 0..self.fm_passes {
            if !sub.fm_pass(design, &order, &mut side, max_imbalance) {
                break;
            }
        }

        let mut left = Vec::new();
        let mut right = Vec::new();
        for (k, &c) in order.iter().enumerate() {
            if side[k] {
                right.push(c);
            } else {
                left.push(c);
            }
        }
        // Seed positions at the subregion centers so terminal propagation
        // sees the committed halves.
        for &c in &left {
            design.cells[c].pos = clamp_into(design, c, left_region);
        }
        for &c in &right {
            design.cells[c].pos = clamp_into(design, c, right_region);
        }
        self.recurse(design, left_region, left, depth + 1, cuts);
        self.recurse(design, right_region, right, depth + 1, cuts);
    }
}

fn coord(p: Point, vertical: bool) -> f64 {
    if vertical {
        p.x
    } else {
        p.y
    }
}

fn split_region(region: Rect, vertical: bool) -> (Rect, Rect) {
    if vertical {
        let mid = 0.5 * (region.xl + region.xh);
        (
            Rect::new(region.xl, region.yl, mid, region.yh),
            Rect::new(mid, region.yl, region.xh, region.yh),
        )
    } else {
        let mid = 0.5 * (region.yl + region.yh);
        (
            Rect::new(region.xl, region.yl, region.xh, mid),
            Rect::new(region.xl, mid, region.xh, region.yh),
        )
    }
}

fn clamp_into(design: &Design, cell: usize, region: Rect) -> Point {
    let c = &design.cells[cell];
    let anchor = if c.pos.is_finite() {
        c.pos
    } else {
        region.center()
    };
    region.clamp_center(
        anchor,
        c.size.width.min(region.width()),
        c.size.height.min(region.height()),
    )
}

/// Grid placement of a leaf region's cells.
fn place_leaf(design: &mut Design, region: Rect, cells: &[usize]) {
    if cells.is_empty() {
        return;
    }
    let k = (cells.len() as f64).sqrt().ceil() as usize;
    for (i, &c) in cells.iter().enumerate() {
        let ix = i % k;
        let iy = i / k;
        let p = Point::new(
            region.xl + (ix as f64 + 0.5) * region.width() / k as f64,
            region.yl + (iy as f64 + 0.5) * region.height() / k as f64,
        );
        let cell = &design.cells[c];
        design.cells[c].pos = region.clamp_center(
            p,
            cell.size.width.min(region.width()),
            cell.size.height.min(region.height()),
        );
    }
}

/// The hypergraph restricted to one bisection subproblem, with terminal
/// propagation: pins outside the cell set are locked to the side their
/// coordinate falls on.
struct Subproblem {
    /// For each local cell, the nets incident to it (as indices into
    /// `nets`).
    cell_nets: Vec<Vec<usize>>,
    /// For each net: local member cells and locked external pin counts
    /// (left, right).
    nets: Vec<(Vec<usize>, usize, usize)>,
}

impl Subproblem {
    fn build(design: &Design, order: &[usize], region: Rect, vertical: bool) -> Self {
        let mid = if vertical {
            0.5 * (region.xl + region.xh)
        } else {
            0.5 * (region.yl + region.yh)
        };
        let mut local_of = std::collections::HashMap::new();
        for (k, &c) in order.iter().enumerate() {
            local_of.insert(c, k);
        }
        let mut net_ids: Vec<NetId> = Vec::new();
        {
            let mut seen = std::collections::HashSet::new();
            for &c in order {
                for &n in &design.cell_nets[c] {
                    if seen.insert(n) {
                        net_ids.push(n);
                    }
                }
            }
        }
        let mut nets = Vec::with_capacity(net_ids.len());
        let mut cell_nets = vec![Vec::new(); order.len()];
        for n in net_ids {
            let net = &design.nets[n.index()];
            let mut members = Vec::new();
            let mut ext_left = 0;
            let mut ext_right = 0;
            for pin in &net.pins {
                let ci = pin.cell.index();
                if let Some(&k) = local_of.get(&ci) {
                    if !members.contains(&k) {
                        members.push(k);
                    }
                } else {
                    let p = design.cells[ci].pos + pin.offset;
                    if coord(p, vertical) < mid {
                        ext_left += 1;
                    } else {
                        ext_right += 1;
                    }
                }
            }
            if members.is_empty() || (members.len() == 1 && ext_left + ext_right == 0) {
                continue;
            }
            let idx = nets.len();
            for &k in &members {
                cell_nets[k].push(idx);
            }
            nets.push((members, ext_left.min(1), ext_right.min(1)));
        }
        Subproblem { cell_nets, nets }
    }

    /// Cut value of a partition: nets with pins (or locked terminals) on
    /// both sides.
    fn cut(&self, side: &[bool]) -> usize {
        self.nets
            .iter()
            .filter(|(members, ext_l, ext_r)| {
                let mut left = *ext_l > 0;
                let mut right = *ext_r > 0;
                for &k in members {
                    if side[k] {
                        right = true;
                    } else {
                        left = true;
                    }
                }
                left && right
            })
            .count()
    }

    /// One FM pass: tentatively move every cell once in gain order, then
    /// roll back to the best prefix. Returns `true` when the cut improved.
    fn fm_pass(
        &self,
        design: &Design,
        order: &[usize],
        side: &mut [bool],
        max_imbalance: f64,
    ) -> bool {
        let n = order.len();
        let start_cut = self.cut(side);
        let mut locked = vec![false; n];
        let area = |k: usize| design.cells[order[k]].area();
        let mut imbalance: f64 = (0..n)
            .map(|k| if side[k] { area(k) } else { -area(k) })
            .sum();

        // (move sequence, cut after each move)
        let mut moves: Vec<usize> = Vec::with_capacity(n);
        let mut work = side.to_vec();
        let mut best_cut = start_cut;
        let mut best_prefix = 0;
        let mut cur_cut = start_cut;

        for _ in 0..n {
            // Pick the unlocked, balance-feasible cell with the best gain.
            let mut best: Option<(i64, usize)> = None;
            for k in 0..n {
                if locked[k] {
                    continue;
                }
                let delta = if work[k] {
                    -2.0 * area(k)
                } else {
                    2.0 * area(k)
                };
                if (imbalance + delta).abs() > max_imbalance.max(2.0 * area(k)) {
                    continue;
                }
                let g = self.gain(k, &work);
                if best.map(|(bg, _)| g > bg).unwrap_or(true) {
                    best = Some((g, k));
                }
            }
            let Some((gain, k)) = best else { break };
            imbalance += if work[k] {
                -2.0 * area(k)
            } else {
                2.0 * area(k)
            };
            work[k] = !work[k];
            locked[k] = true;
            moves.push(k);
            cur_cut = (cur_cut as i64 - gain) as usize;
            if cur_cut < best_cut {
                best_cut = cur_cut;
                best_prefix = moves.len();
            }
        }

        if best_cut >= start_cut {
            return false;
        }
        // Apply the best prefix.
        for &k in &moves[..best_prefix] {
            side[k] = !side[k];
        }
        debug_assert_eq!(self.cut(side), best_cut);
        true
    }

    /// FM gain of moving local cell `k`: cut nets that become uncut minus
    /// uncut nets that become cut.
    fn gain(&self, k: usize, side: &[bool]) -> i64 {
        let mut gain = 0i64;
        let from = side[k];
        for &ni in &self.cell_nets[k] {
            let (members, ext_l, ext_r) = &self.nets[ni];
            let mut on_from = if from { *ext_r } else { *ext_l };
            let mut on_to = if from { *ext_l } else { *ext_r };
            for &m in members {
                if m == k {
                    continue;
                }
                if side[m] == from {
                    on_from += 1;
                } else {
                    on_to += 1;
                }
            }
            if on_from == 0 {
                gain += 1; // net becomes uncut
            } else if on_to == 0 {
                gain -= 1; // net becomes cut
            }
        }
        gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eplace_benchgen::BenchmarkConfig;
    use eplace_netlist::{CellKind, DesignBuilder};

    #[test]
    fn fm_separates_two_cliques() {
        // Two 4-cliques joined by one bridge net: optimal cut = 1.
        let mut b = DesignBuilder::new("fm", Rect::new(0.0, 0.0, 100.0, 100.0));
        let ids: Vec<_> = (0..8)
            .map(|i| b.add_cell(format!("c{i}"), 2.0, 2.0, CellKind::StdCell))
            .collect();
        for group in [[0, 1, 2, 3], [4, 5, 6, 7]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_net(
                        "e",
                        vec![
                            (ids[group[i]], Point::ORIGIN),
                            (ids[group[j]], Point::ORIGIN),
                        ],
                    );
                }
            }
        }
        b.add_net(
            "bridge",
            vec![(ids[0], Point::ORIGIN), (ids[4], Point::ORIGIN)],
        );
        let d = b.build();
        // Adversarial start: interleaved sides.
        let order: Vec<usize> = (0..8).collect();
        let mut side: Vec<bool> = (0..8).map(|k| k % 2 == 1).collect();
        let sub = Subproblem::build(&d, &order, d.region, true);
        let placer = MincutPlacer::default();
        for _ in 0..4 {
            if !sub.fm_pass(&d, &order, &mut side, 16.0) {
                break;
            }
        }
        assert_eq!(sub.cut(&side), 1, "sides: {side:?}");
        let _ = placer;
    }

    #[test]
    fn gain_computation_matches_cut_delta() {
        let mut b = DesignBuilder::new("g", Rect::new(0.0, 0.0, 10.0, 10.0));
        let ids: Vec<_> = (0..4)
            .map(|i| b.add_cell(format!("c{i}"), 1.0, 1.0, CellKind::StdCell))
            .collect();
        b.add_net("n0", vec![(ids[0], Point::ORIGIN), (ids[1], Point::ORIGIN)]);
        b.add_net(
            "n1",
            vec![
                (ids[1], Point::ORIGIN),
                (ids[2], Point::ORIGIN),
                (ids[3], Point::ORIGIN),
            ],
        );
        let d = b.build();
        let order: Vec<usize> = (0..4).collect();
        let sub = Subproblem::build(&d, &order, d.region, true);
        let side = vec![false, false, true, true];
        for k in 0..4 {
            let before = sub.cut(&side) as i64;
            let mut flipped = side.clone();
            flipped[k] = !flipped[k];
            let after = sub.cut(&flipped) as i64;
            assert_eq!(sub.gain(k, &side), before - after, "cell {k}");
        }
    }

    #[test]
    fn mincut_places_everything_in_region() {
        let mut d = BenchmarkConfig::ispd05_like("mc", 99).scale(300).generate();
        let result = MincutPlacer::default().global_place(&mut d);
        assert!(result.iterations > 0, "no bisections happened");
        for c in d.cells.iter().filter(|c| c.is_movable()) {
            assert!(
                d.region.contains(c.pos),
                "cell {} at {} left the region",
                c.name,
                c.pos
            );
        }
    }

    #[test]
    fn mincut_improves_over_random_scatter() {
        let mut d = BenchmarkConfig::ispd05_like("mc", 100)
            .scale(300)
            .generate();
        let scattered_hpwl = d.hpwl();
        let result = MincutPlacer::default().global_place(&mut d);
        assert!(
            result.hpwl < scattered_hpwl,
            "mincut {} vs scatter {}",
            result.hpwl,
            scattered_hpwl
        );
    }

    #[test]
    fn leaf_placement_spreads_cells() {
        let mut d = BenchmarkConfig::ispd05_like("mc", 101)
            .scale(200)
            .generate();
        MincutPlacer::default().global_place(&mut d);
        // Overflow should be moderate: min-cut spreads by construction.
        let overflow = measure_overflow(&d);
        assert!(overflow < 0.6, "overflow {overflow}");
    }
}
