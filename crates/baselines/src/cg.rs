use crate::{measure_overflow, GlobalPlacer, GpResult};
use eplace_core::{
    initial_placement, insert_fillers, EplaceConfig, EplaceCost, Gradient, PlacementProblem,
};
use eplace_geometry::Point;
use eplace_netlist::Design;
use std::time::Instant;

/// Nonlinear conjugate gradients with line search on the *same* eDensity
/// cost ePlace minimizes — the stand-in for the authors' prior placer
/// FFTPL \[10\].
///
/// This is the head-to-head the paper's §V-A motivates: identical cost
/// function and schedules, but the classic Polak–Ribière CG solver whose
/// steplength comes from a backtracking Armijo line search. Every line
/// search probe costs a full density solve + wirelength evaluation, which
/// is why the paper measures line search at >60 % of FFTPL's runtime —
/// [`GpResult::line_search_seconds`] lets the benches reproduce that split.
#[derive(Debug, Clone, PartialEq)]
pub struct CgPlacer {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Stopping overflow τ (same as ePlace: 0.10).
    pub target_overflow: f64,
    /// Armijo sufficient-decrease constant.
    pub armijo_c1: f64,
    /// Maximum probes per line search.
    pub max_probes: usize,
    /// Filler scattering seed.
    pub seed: u64,
}

impl Default for CgPlacer {
    fn default() -> Self {
        CgPlacer {
            max_iterations: 600,
            target_overflow: 0.10,
            armijo_c1: 1e-4,
            max_probes: 8,
            seed: 0xF577,
        }
    }
}

impl GlobalPlacer for CgPlacer {
    fn name(&self) -> &'static str {
        "cg-fftpl"
    }

    fn global_place(&self, design: &mut Design) -> GpResult {
        let start = Instant::now();
        let mut line_search = std::time::Duration::ZERO;
        initial_placement(design);
        design.remove_fillers();
        insert_fillers(design, self.seed);
        let problem = PlacementProblem::all_movables(design);
        let n = problem.len();
        let mut iterations = 0;
        if n > 0 {
            let cfg = EplaceConfig::fast();
            let dim = eplace_density::grid_dimension(n, cfg.grid_min, cfg.grid_max);
            // FFTPL predates the preconditioner (§V-D: "zero attempts in
            // nonlinear placers").
            let mut cost = EplaceCost::new(design, &problem, dim, dim, false);
            let mut pos = problem.positions(design);
            cost.init_lambda(&pos);
            let hpwl_init = cost.hpwl(&pos).max(1.0);
            let delta_ref = cfg.delta_hpwl_ref_frac * hpwl_init;
            let mut prev_hpwl = hpwl_init;

            let mut g = vec![Point::ORIGIN; n];
            let mut g_prev = vec![Point::ORIGIN; n];
            let mut dir = vec![Point::ORIGIN; n];
            let mut trial = vec![Point::ORIGIN; n];
            cost.gradient(&pos, &mut g);
            for i in 0..n {
                dir[i] = -g[i];
            }
            let mut step = cost.bin_width();

            for iter in 0..self.max_iterations {
                iterations = iter + 1;
                // Backtracking Armijo line search along `dir`. The λ/γ
                // schedules changed since the last evaluation, so the
                // current objective value must be re-measured first — one
                // more full evaluation per iteration, which is precisely the
                // line-search overhead §V-A complains about.
                let t0 = Instant::now();
                let f_curr = cost.value(&pos);
                let slope: f64 = g.iter().zip(&dir).map(|(a, b)| a.dot(*b)).sum();
                let mut t = step;
                let mut accepted = false;
                for _ in 0..self.max_probes {
                    for i in 0..n {
                        trial[i] = pos[i] + dir[i] * t;
                    }
                    cost.project(&mut trial);
                    let f_new = cost.value(&trial);
                    if f_new <= f_curr + self.armijo_c1 * t * slope || f_new < f_curr {
                        accepted = true;
                        break;
                    }
                    t *= 0.5;
                }
                line_search += t0.elapsed();
                if !accepted {
                    // Restart along steepest descent with a smaller step.
                    for i in 0..n {
                        dir[i] = -g[i];
                    }
                    step *= 0.5;
                    if step < 1e-9 * cost.bin_width() {
                        break;
                    }
                    continue;
                }
                std::mem::swap(&mut pos, &mut trial);
                step = (t * 2.0).max(1e-6 * cost.bin_width());

                // New gradient; Polak–Ribière direction update.
                std::mem::swap(&mut g, &mut g_prev);
                cost.gradient(&pos, &mut g);
                let num: f64 = g
                    .iter()
                    .zip(&g_prev)
                    .map(|(gn, go)| gn.dot(*gn - *go))
                    .sum();
                let den: f64 = g_prev.iter().map(|v| v.norm_sq()).sum();
                let beta = if den > 1e-30 {
                    (num / den).max(0.0)
                } else {
                    0.0
                };
                for i in 0..n {
                    dir[i] = -g[i] + dir[i] * beta;
                }
                // Descent safeguard.
                let descent: f64 = g.iter().zip(&dir).map(|(a, b)| a.dot(*b)).sum();
                if descent >= 0.0 {
                    for i in 0..n {
                        dir[i] = -g[i];
                    }
                }

                // Identical schedules to ePlace.
                let hpwl = cost.hpwl(&pos);
                cost.update_lambda(
                    hpwl - prev_hpwl,
                    delta_ref,
                    cfg.lambda_mu_min,
                    cfg.lambda_mu_max,
                );
                cost.update_gamma();
                prev_hpwl = hpwl;
                if cost.last_overflow <= self.target_overflow && iter >= 15 {
                    break;
                }
            }
            drop(cost);
            problem.apply(design, &pos);
        }
        design.remove_fillers();
        GpResult {
            hpwl: design.hpwl(),
            overflow: measure_overflow(design),
            iterations,
            seconds: start.elapsed().as_secs_f64(),
            line_search_seconds: line_search.as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eplace_benchgen::BenchmarkConfig;

    #[test]
    fn cg_spreads_a_small_design() {
        let mut d = BenchmarkConfig::ispd05_like("cg", 91).scale(200).generate();
        let before_overflow = {
            let mut tmp = d.clone();
            initial_placement(&mut tmp);
            measure_overflow(&tmp)
        };
        let result = CgPlacer::default().global_place(&mut d);
        assert!(result.overflow < before_overflow, "{result:?}");
        assert!(result.overflow < 0.30, "overflow {}", result.overflow);
        assert!(result.iterations > 0);
    }

    #[test]
    fn line_search_time_is_substantial() {
        // The §V-A claim at small scale: line search is a large share of CG
        // runtime (>60 % in the paper's profile; we only require a
        // nontrivial share here).
        let mut d = BenchmarkConfig::ispd05_like("cg", 92).scale(250).generate();
        let result = CgPlacer::default().global_place(&mut d);
        assert!(
            result.line_search_seconds > 0.2 * result.seconds,
            "line search {:.3}s of {:.3}s",
            result.line_search_seconds,
            result.seconds
        );
    }

    #[test]
    fn no_fillers_left_behind() {
        let mut d = BenchmarkConfig::ispd05_like("cg", 93).scale(150).generate();
        CgPlacer::default().global_place(&mut d);
        assert_eq!(d.count_kind(eplace_netlist::CellKind::Filler), 0);
    }
}
