use crate::{measure_overflow, GlobalPlacer, GpResult};
use eplace_core::{quadratic_solve, Anchor};
use eplace_geometry::{Point, Rect};
use eplace_netlist::Design;
use std::time::Instant;

/// A SimPL/ComPLx-style quadratic placer (the paper's "quadratic" family:
/// FastPlace3.0, ComPLx, POLAR, BonnPlace): look-ahead *rough legalization*
/// closes the gap between the wirelength-optimal lower bound and a nearly
/// overlap-free upper bound.
///
/// Per round:
///
/// 1. **lower bound** — a B2B quadratic solve with the current anchors
///    (pure wirelength on round 0);
/// 2. **upper bound** — look-ahead geometric spreading: the region is
///    recursively bisected, the cells of each node are split across the
///    halves in coordinate order so that cell area matches free capacity
///    (fixed blockages subtracted), and leaves grid their few cells. Order
///    preservation keeps displacement — and wirelength damage — small;
/// 3. each cell gets an anchor pseudo-net toward its look-ahead position,
///    with weight growing linearly in the round index (the primal–dual
///    penalty ramp of ComPLx).
///
/// The iteration converges when the two bounds meet — when the quadratic
/// solution is itself nearly legal (`τ ≤ target`).
#[derive(Debug, Clone, PartialEq)]
pub struct QuadraticPlacer {
    /// Round cap.
    pub max_rounds: usize,
    /// Stopping overflow τ.
    pub target_overflow: f64,
    /// Anchor weight on round `r` is `anchor_weight_step · (r + 1)`.
    pub anchor_weight_step: f64,
    /// Leaf size of the look-ahead spreading.
    pub leaf_size: usize,
}

impl Default for QuadraticPlacer {
    fn default() -> Self {
        QuadraticPlacer {
            max_rounds: 60,
            target_overflow: 0.10,
            anchor_weight_step: 0.01,
            leaf_size: 4,
        }
    }
}

impl GlobalPlacer for QuadraticPlacer {
    fn name(&self) -> &'static str {
        "quadratic"
    }

    fn global_place(&self, design: &mut Design) -> GpResult {
        let start = Instant::now();
        // Round 0: the wirelength-optimal lower bound.
        quadratic_solve(design, &[], 3);
        let fixed: Vec<Rect> = design
            .cells
            .iter()
            .filter(|c| c.fixed)
            .filter_map(|c| c.rect().intersection(&design.region))
            .collect();
        let mut iterations = 0;
        for round in 0..self.max_rounds {
            iterations = round + 1;
            if measure_overflow(design) <= self.target_overflow {
                break;
            }
            let targets = self.look_ahead_targets(design, &fixed);
            let weight = self.anchor_weight_step * (round + 1) as f64;
            let anchors: Vec<Anchor> = targets
                .into_iter()
                .map(|(cell, target)| Anchor {
                    cell,
                    target,
                    weight,
                })
                .collect();
            quadratic_solve(design, &anchors, 1);
        }
        GpResult {
            hpwl: design.hpwl(),
            overflow: measure_overflow(design),
            iterations,
            seconds: start.elapsed().as_secs_f64(),
            line_search_seconds: 0.0,
        }
    }
}

impl QuadraticPlacer {
    /// Computes the order-preserving spread position of every movable cell.
    fn look_ahead_targets(&self, design: &Design, fixed: &[Rect]) -> Vec<(usize, Point)> {
        let cells: Vec<usize> = design.movable_indices().collect();
        let mut out = Vec::with_capacity(cells.len());
        self.spread(design, fixed, design.region, cells, true, &mut out);
        out
    }

    /// Recursive capacity-balanced bisection (the SimPL look-ahead).
    fn spread(
        &self,
        design: &Design,
        fixed: &[Rect],
        region: Rect,
        mut cells: Vec<usize>,
        vertical: bool,
        out: &mut Vec<(usize, Point)>,
    ) {
        if cells.is_empty() {
            return;
        }
        if cells.len() <= self.leaf_size || region.width() < 1.0 || region.height() < 1.0 {
            let k = (cells.len() as f64).sqrt().ceil() as usize;
            // Leaf: order-preserving grid fill.
            cells.sort_by(|&a, &b| design.cells[a].pos.x.total_cmp(&design.cells[b].pos.x));
            for (i, &c) in cells.iter().enumerate() {
                let ix = i % k;
                let iy = i / k;
                let p = Point::new(
                    region.xl + (ix as f64 + 0.5) * region.width() / k as f64,
                    region.yl + (iy as f64 + 0.5) * region.height() / k as f64,
                );
                out.push((c, p));
            }
            return;
        }
        let (r1, r2) = if vertical {
            let mid = 0.5 * (region.xl + region.xh);
            (
                Rect::new(region.xl, region.yl, mid, region.yh),
                Rect::new(mid, region.yl, region.xh, region.yh),
            )
        } else {
            let mid = 0.5 * (region.yl + region.yh);
            (
                Rect::new(region.xl, region.yl, region.xh, mid),
                Rect::new(region.xl, mid, region.xh, region.yh),
            )
        };
        let free = |r: &Rect| -> f64 {
            let blocked: f64 = fixed.iter().map(|f| f.overlap_area(r)).sum();
            (r.area() - blocked).max(1e-9)
        };
        let c1 = free(&r1);
        let c2 = free(&r2);
        // Split the cells in coordinate order so area matches capacity.
        cells.sort_by(|&a, &b| {
            let ka = if vertical {
                design.cells[a].pos.x
            } else {
                design.cells[a].pos.y
            };
            let kb = if vertical {
                design.cells[b].pos.x
            } else {
                design.cells[b].pos.y
            };
            ka.total_cmp(&kb)
        });
        let total_area: f64 = cells.iter().map(|&c| design.cells[c].area()).sum();
        let want_left = total_area * c1 / (c1 + c2);
        let mut acc = 0.0;
        let mut split = cells.len();
        for (k, &c) in cells.iter().enumerate() {
            if acc >= want_left {
                split = k;
                break;
            }
            acc += design.cells[c].area();
        }
        let right = cells.split_off(split);
        self.spread(design, fixed, r1, cells, !vertical, out);
        self.spread(design, fixed, r2, right, !vertical, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eplace_benchgen::BenchmarkConfig;

    #[test]
    fn quadratic_placer_reduces_overflow() {
        let mut d = BenchmarkConfig::ispd05_like("qp", 95).scale(250).generate();
        let result = QuadraticPlacer::default().global_place(&mut d);
        assert!(result.overflow < 0.30, "overflow {}", result.overflow);
        assert!(result.hpwl > 0.0);
        assert_eq!(result.line_search_seconds, 0.0);
    }

    #[test]
    fn spreading_trades_wirelength() {
        // The quadratic optimum is the HPWL lower bound; spreading gives it
        // back.
        let mut d = BenchmarkConfig::ispd05_like("qp", 96).scale(200).generate();
        quadratic_solve(&mut d, &[], 3);
        let hpwl_opt = d.hpwl();
        let result = QuadraticPlacer::default().global_place(&mut d);
        assert!(result.hpwl >= hpwl_opt * 0.99);
    }

    #[test]
    fn makes_steady_overflow_progress() {
        // The primal-dual iteration may hit the round cap on hard seeds;
        // what must hold is substantial overflow reduction from the ~0.8 of
        // the quadratic optimum.
        let mut d = BenchmarkConfig::ispd05_like("qp", 97).scale(200).generate();
        let result = QuadraticPlacer::default().global_place(&mut d);
        assert!(
            result.overflow < 0.35,
            "overflow stuck at {} after {} rounds",
            result.overflow,
            result.iterations
        );
    }
}
