use crate::{measure_overflow, GlobalPlacer, GpResult};
use eplace_core::initial_placement;
use eplace_density::{grid_dimension, BellShapeDensity};
use eplace_geometry::{Point, Size};
use eplace_netlist::Design;
use eplace_wirelength::{LseModel, SmoothWirelength};
use std::time::Instant;

/// An APlace/NTUplace-family nonlinear placer: log-sum-exp wirelength plus
/// the bell-shaped quadratic density penalty, minimized by conjugate
/// gradients with a backtracking line search under μ-continuation
/// (the penalty weight doubles per outer round).
///
/// This is the historical formulation ePlace's eDensity replaces: the
/// penalty is local (empty regions exert no force), non-convex, and needs
/// a line search — the combination behind the quality/overflow gap the
/// paper's tables show for the nonlinear family.
#[derive(Debug, Clone, PartialEq)]
pub struct BellshapePlacer {
    /// Outer μ-continuation rounds.
    pub max_rounds: usize,
    /// CG iterations per round.
    pub inner_iterations: usize,
    /// Stopping overflow τ.
    pub target_overflow: f64,
    /// μ growth factor per round.
    pub mu_growth: f64,
}

impl Default for BellshapePlacer {
    fn default() -> Self {
        BellshapePlacer {
            max_rounds: 24,
            inner_iterations: 24,
            target_overflow: 0.10,
            mu_growth: 2.0,
        }
    }
}

impl GlobalPlacer for BellshapePlacer {
    fn name(&self) -> &'static str {
        "bellshape"
    }

    fn global_place(&self, design: &mut Design) -> GpResult {
        let start = Instant::now();
        initial_placement(design);
        let movables: Vec<usize> = design.movable_indices().collect();
        let n = movables.len();
        let mut iterations = 0;
        let mut line_search = std::time::Duration::ZERO;
        if n > 0 {
            let dim = grid_dimension(n, 8, 128);
            let mut bell = BellShapeDensity::new(design.region, dim, dim, design.target_density);
            for c in design.cells.iter().filter(|c| c.fixed) {
                bell.add_fixed(c.rect());
            }
            let sizes: Vec<Size> = movables.iter().map(|&i| design.cells[i].size).collect();
            let mut lse = LseModel::new(design);
            let gamma = 2.0 * design.region.width() / dim as f64;

            let mut pos: Vec<Point> = movables.iter().map(|&i| design.cells[i].pos).collect();
            let mut full_pos: Vec<Point> = design.cells.iter().map(|c| c.pos).collect();
            let mut full_grad = vec![Point::ORIGIN; design.cells.len()];

            // μ₀ balances initial gradient magnitudes.
            let sync = |full: &mut Vec<Point>, pos: &[Point]| {
                for (k, &ci) in movables.iter().enumerate() {
                    full[ci] = pos[k];
                }
            };
            sync(&mut full_pos, &pos);
            bell.accumulate(&sizes, &pos);
            let wl0 = lse.gradient(design, &full_pos, gamma, &mut full_grad);
            let wl_l1: f64 = movables
                .iter()
                .map(|&ci| full_grad[ci].x.abs() + full_grad[ci].y.abs())
                .sum();
            let bell_l1: f64 = (0..n)
                .map(|k| {
                    let g = bell.gradient(k, sizes[k], pos[k]);
                    g.x.abs() + g.y.abs()
                })
                .sum();
            let mut mu = if bell_l1 > 1e-30 {
                wl_l1 / bell_l1
            } else {
                1.0
            };
            let _ = wl0;

            let mut grad = vec![Point::ORIGIN; n];
            let mut grad_prev = vec![Point::ORIGIN; n];
            let mut dir = vec![Point::ORIGIN; n];
            let mut trial = vec![Point::ORIGIN; n];

            'outer: for _round in 0..self.max_rounds {
                let eval_grad = |lse: &mut LseModel,
                                 bell: &mut BellShapeDensity,
                                 full_pos: &mut Vec<Point>,
                                 full_grad: &mut Vec<Point>,
                                 pos: &[Point],
                                 grad: &mut [Point],
                                 mu: f64|
                 -> f64 {
                    for (k, &ci) in movables.iter().enumerate() {
                        full_pos[ci] = pos[k];
                    }
                    bell.accumulate(&sizes, pos);
                    let wl = lse.gradient(design, full_pos, gamma, full_grad);
                    for (k, &ci) in movables.iter().enumerate() {
                        grad[k] = full_grad[ci] + bell.gradient(k, sizes[k], pos[k]) * mu;
                    }
                    wl + mu * bell.penalty()
                };

                let mut f_curr = eval_grad(
                    &mut lse,
                    &mut bell,
                    &mut full_pos,
                    &mut full_grad,
                    &pos,
                    &mut grad,
                    mu,
                );
                for i in 0..n {
                    dir[i] = -grad[i];
                }
                let mut step = design.region.width() / dim as f64;

                for _ in 0..self.inner_iterations {
                    iterations += 1;
                    let slope: f64 = grad.iter().zip(&dir).map(|(a, b)| a.dot(*b)).sum();
                    let t0 = Instant::now();
                    let mut t = step;
                    let mut accepted = false;
                    for _ in 0..8 {
                        for i in 0..n {
                            trial[i] = pos[i] + dir[i] * t;
                            let c = &design.cells[movables[i]];
                            trial[i] = design.region.clamp_center(
                                trial[i],
                                c.size.width.min(design.region.width()),
                                c.size.height.min(design.region.height()),
                            );
                        }
                        for (k, &ci) in movables.iter().enumerate() {
                            full_pos[ci] = trial[k];
                        }
                        bell.accumulate(&sizes, &trial);
                        let f_new = lse.evaluate(design, &full_pos, gamma) + mu * bell.penalty();
                        if f_new <= f_curr + 1e-4 * t * slope || f_new < f_curr {
                            accepted = true;
                            f_curr = f_new;
                            break;
                        }
                        t *= 0.5;
                    }
                    line_search += t0.elapsed();
                    if !accepted {
                        break;
                    }
                    std::mem::swap(&mut pos, &mut trial);
                    step = t * 2.0;
                    std::mem::swap(&mut grad, &mut grad_prev);
                    let _ = eval_grad(
                        &mut lse,
                        &mut bell,
                        &mut full_pos,
                        &mut full_grad,
                        &pos,
                        &mut grad,
                        mu,
                    );
                    // Polak–Ribière.
                    let num: f64 = grad
                        .iter()
                        .zip(&grad_prev)
                        .map(|(gn, go)| gn.dot(*gn - *go))
                        .sum();
                    let den: f64 = grad_prev.iter().map(|v| v.norm_sq()).sum();
                    let beta = if den > 1e-30 {
                        (num / den).max(0.0)
                    } else {
                        0.0
                    };
                    for i in 0..n {
                        dir[i] = -grad[i] + dir[i] * beta;
                    }
                    let descent: f64 = grad.iter().zip(&dir).map(|(a, b)| a.dot(*b)).sum();
                    if descent >= 0.0 {
                        for i in 0..n {
                            dir[i] = -grad[i];
                        }
                    }
                }

                // Commit this round and check the global overflow oracle.
                for (k, &ci) in movables.iter().enumerate() {
                    design.cells[ci].pos = pos[k];
                }
                if measure_overflow(design) <= self.target_overflow {
                    break 'outer;
                }
                mu *= self.mu_growth;
            }
            for (k, &ci) in movables.iter().enumerate() {
                design.cells[ci].pos = pos[k];
            }
        }
        GpResult {
            hpwl: design.hpwl(),
            overflow: measure_overflow(design),
            iterations,
            seconds: start.elapsed().as_secs_f64(),
            line_search_seconds: line_search.as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eplace_benchgen::BenchmarkConfig;

    #[test]
    fn bellshape_spreads_cells() {
        let mut d = BenchmarkConfig::ispd05_like("bp", 97).scale(200).generate();
        let mut tmp = d.clone();
        initial_placement(&mut tmp);
        let overflow_at_optimum = measure_overflow(&tmp);
        let result = BellshapePlacer::default().global_place(&mut d);
        assert!(
            result.overflow < overflow_at_optimum,
            "overflow {} (start {})",
            result.overflow,
            overflow_at_optimum
        );
        assert!(result.iterations > 0);
    }

    #[test]
    fn uses_line_search_time() {
        let mut d = BenchmarkConfig::ispd05_like("bp", 98).scale(150).generate();
        let result = BellshapePlacer::default().global_place(&mut d);
        assert!(result.line_search_seconds > 0.0);
    }
}
