//! Baseline placers for the paper's evaluation (Tables I–III).
//!
//! The paper compares ePlace against twelve binary-only competitors spanning
//! three algorithm families (§I). This crate implements one faithful
//! representative per family, plus the paper's own predecessor:
//!
//! | baseline | family | stands in for |
//! |---|---|---|
//! | [`MincutPlacer`] | min-cut | Capo 10.5 |
//! | [`QuadraticPlacer`] | quadratic | FastPlace3.0 / ComPLx / POLAR |
//! | [`BellshapePlacer`] | nonlinear (bell-shape + CG line search) | APlace3 / NTUplace3 / mPL6 |
//! | [`CgPlacer`] | nonlinear (eDensity + CG line search) | FFTPL \[10\] |
//!
//! All implement [`GlobalPlacer`]: they take a design and produce a *global*
//! placement (overlap mostly resolved, nothing legalized); the benchmark
//! harness runs the identical downstream flow (mLG/cDP) on every placer so
//! the tables compare the global-placement algorithms, as the contest
//! protocol does.
//!
//! # Examples
//!
//! ```
//! use eplace_baselines::{GlobalPlacer, QuadraticPlacer};
//! use eplace_benchgen::BenchmarkConfig;
//!
//! let mut design = BenchmarkConfig::ispd05_like("b", 3).scale(200).generate();
//! let result = QuadraticPlacer::default().global_place(&mut design);
//! assert!(result.hpwl > 0.0);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod bellshape;
mod cg;
mod mincut;
mod quadratic;

pub use bellshape::BellshapePlacer;
pub use cg::CgPlacer;
pub use mincut::MincutPlacer;
pub use quadratic::QuadraticPlacer;

use eplace_density::{grid_dimension, DensityGrid, DensityObject};
use eplace_netlist::Design;

/// Outcome of one global placement run.
#[derive(Debug, Clone, PartialEq)]
pub struct GpResult {
    /// HPWL of the produced (global, not legalized) placement.
    pub hpwl: f64,
    /// Density overflow τ measured by [`measure_overflow`].
    pub overflow: f64,
    /// Iterations (solver-specific notion).
    pub iterations: usize,
    /// Wall-clock seconds of the run.
    pub seconds: f64,
    /// Seconds spent inside line search (0 for solvers without one) —
    /// quantifies the §V-A claim that line search dominates CG runtime.
    pub line_search_seconds: f64,
}

/// A global-placement algorithm under comparison.
pub trait GlobalPlacer {
    /// Short name for table rows ("mincut", "quadratic", …).
    fn name(&self) -> &'static str;

    /// Produces a global placement of every movable cell of `design` in
    /// place.
    fn global_place(&self, design: &mut Design) -> GpResult;
}

/// The shared overflow oracle: τ of the current (filler-free) layout on the
/// standard grid policy, identical for every placer so the tables' density
/// columns are comparable.
pub fn measure_overflow(design: &Design) -> f64 {
    let movables: Vec<usize> = design.movable_indices().collect();
    if movables.is_empty() {
        return 0.0;
    }
    let dim = grid_dimension(movables.len(), 16, 512);
    let mut grid = DensityGrid::new(design.region, dim, dim, design.target_density);
    for c in design.cells.iter().filter(|c| c.fixed) {
        grid.add_fixed(c.rect());
    }
    let objects: Vec<DensityObject> = movables
        .iter()
        .map(|&i| DensityObject::movable(design.cells[i].size))
        .collect();
    let pos: Vec<_> = movables.iter().map(|&i| design.cells[i].pos).collect();
    grid.deposit(&objects, &pos);
    grid.overflow()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eplace_benchgen::BenchmarkConfig;

    #[test]
    fn overflow_oracle_spread_vs_piled() {
        let mut d = BenchmarkConfig::ispd05_like("o", 81).scale(200).generate();
        // Generator scatters uniformly: moderate overflow.
        let scattered = measure_overflow(&d);
        // Pile everything up.
        let center = d.region.center();
        for c in d.cells.iter_mut().filter(|c| c.is_movable()) {
            c.pos = center;
        }
        let piled = measure_overflow(&d);
        assert!(piled > scattered);
        assert!(piled > 0.5);
    }

    #[test]
    fn all_baselines_have_distinct_names() {
        let names = [
            MincutPlacer::default().name(),
            QuadraticPlacer::default().name(),
            BellshapePlacer::default().name(),
            CgPlacer::default().name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
