//! `eplace-serve` — placement as a service.
//!
//! A long-running daemon that accepts placement jobs through a watched
//! spool directory, schedules them across a bounded worker pool, and is
//! crash-recoverable end to end:
//!
//! - **Jobs** are JSON manifests ([`JobManifest`]) naming an input design
//!   (generated demo or Bookshelf `.aux`) plus config overrides and service
//!   policy (deadline, retry budget).
//! - **Durability**: workers run the global placement in fixed-size
//!   iteration chunks with an atomic, checksummed checkpoint
//!   ([`eplace_core::save_checkpoint`]) at every chunk boundary, and every
//!   state transition is fsynced into a replayable JSONL ledger
//!   ([`ledger`]) *after* the artifact it references is on disk.
//! - **Recovery**: on restart the daemon replays the ledger and resumes
//!   in-flight jobs from their last on-disk checkpoint; because chunk
//!   boundaries align across restarts and checkpoint/resume is
//!   trajectory-neutral, a SIGKILLed-and-resumed job finishes bit-identical
//!   to an uninterrupted one.
//! - **Resilience policy**: per-job wall-clock deadlines, bounded
//!   retry-with-backoff on failures (layered on the core's divergence
//!   sentinel), and poison-job quarantine once the budget is exhausted —
//!   the daemon keeps serving other jobs throughout. Cancellation is
//!   cooperative ([`eplace_core::CancelToken`]), checked at iteration
//!   boundaries.
//!
//! See `DESIGN.md` §13 for the architecture and the full job state
//! machine.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod daemon;
pub mod ledger;
pub mod manifest;

pub use daemon::{serve, ServeConfig, ServeSummary};
pub use ledger::{fold, replay, JobEvent, JobStatus, Ledger, LedgerRecord};
pub use manifest::{JobManifest, JobSource};
