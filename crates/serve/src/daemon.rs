//! The placement service daemon: spool-directory intake, a bounded worker
//! pool, durable per-chunk checkpoints, deadline/retry/quarantine policy,
//! and ledger-driven crash recovery.
//!
//! # Spool layout
//!
//! ```text
//! <spool>/
//!   incoming/        drop `<name>.json` manifests here to submit
//!   jobs/<name>/     manifest.json, job.ckpt, result.json
//!   quarantine/      `<name>.json` reason records for given-up jobs
//!   cancel/          touch `<name>` to request cancellation
//!   ledger.jsonl     the replayable job ledger (see [`crate::ledger`])
//!   stop             touch to make the daemon exit promptly
//! ```
//!
//! # Crash-recovery invariants
//!
//! 1. A checkpoint file is durably on disk (atomic write + fsync) *before*
//!    the ledger records `checkpointed@iter`.
//! 2. A `result.json` is durably on disk before the ledger records `done`.
//! 3. Every ledger append is fsynced before the daemon acts on the
//!    transition.
//! 4. Workers run the placement as fixed-size chunks of iterations with a
//!    checkpoint at every chunk boundary; a resumed run re-enters at a
//!    chunk boundary and therefore replays the *same* chunk sequence as an
//!    uninterrupted run — which is why kill-and-restart produces
//!    bit-identical results (checkpoint/resume itself is trajectory-neutral,
//!    proven by the core's split-run tests).
//!
//! Together these mean SIGKILL at any instant loses at most the work since
//! the last chunk boundary, and never corrupts spool state.

use crate::ledger::{fold, replay, JobEvent, Ledger};
use crate::manifest::JobManifest;
use eplace_core::{
    initial_placement, insert_fillers, load_checkpoint, resume_global_placement,
    run_global_placement, save_checkpoint, CancelToken, EplaceConfig, GpCheckpoint,
    PlacementProblem, Stage,
};
use eplace_errors::EplaceError;
use eplace_obs::{write_atomic, Record};
use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Sender};
use std::time::{Duration, Instant};

/// Daemon settings. Everything but the spool root has a serviceable
/// default.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Spool root directory (created on startup).
    pub spool: PathBuf,
    /// Concurrent placement workers.
    pub workers: usize,
    /// Scheduler tick interval.
    pub poll_ms: u64,
    /// Iterations per durable checkpoint. Smaller = less work lost on a
    /// crash, more checkpoint I/O. Must match across restarts of the same
    /// spool for the chunk-alignment invariant.
    pub chunk_iters: usize,
    /// Base retry backoff; attempt `n` waits `base << (n-1)`.
    pub backoff_base_ms: u64,
    /// Exit once every known job is terminal and the spool is quiet
    /// (one-shot batch mode; also how CI finishes a restarted daemon).
    pub drain: bool,
}

impl ServeConfig {
    /// Defaults rooted at `spool`.
    pub fn new(spool: impl Into<PathBuf>) -> Self {
        ServeConfig {
            spool: spool.into(),
            workers: 2,
            poll_ms: 10,
            chunk_iters: 25,
            backoff_base_ms: 50,
            drain: false,
        }
    }

    /// `incoming/` — manifest drop box.
    pub fn incoming_dir(&self) -> PathBuf {
        self.spool.join("incoming")
    }

    /// `jobs/<name>/` — a job's working directory.
    pub fn job_dir(&self, name: &str) -> PathBuf {
        self.spool.join("jobs").join(name)
    }

    /// `quarantine/` — reason records for given-up jobs.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.spool.join("quarantine")
    }

    /// `cancel/` — cancellation marker files.
    pub fn cancel_dir(&self) -> PathBuf {
        self.spool.join("cancel")
    }

    /// The job ledger path.
    pub fn ledger_path(&self) -> PathBuf {
        self.spool.join("ledger.jsonl")
    }

    /// The stop marker path.
    pub fn stop_marker(&self) -> PathBuf {
        self.spool.join("stop")
    }
}

/// What a [`serve`] run processed (cumulative for this process only; the
/// ledger is the cross-restart record).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs that reached `done`.
    pub done: usize,
    /// Jobs quarantined (budget or deadline exhaustion, corrupt state).
    pub quarantined: usize,
    /// Jobs cancelled via marker.
    pub cancelled: usize,
    /// In-flight jobs resumed from a previous process's checkpoints.
    pub resumed: usize,
}

enum WorkerMsg {
    Checkpointed { job: String, iteration: usize },
    Done { job: String, hpwl: f64 },
    Failed { job: String, reason: String },
    Cancelled { job: String },
}

struct QueuedJob {
    manifest: JobManifest,
}

struct Running {
    handle: std::thread::JoinHandle<()>,
    cancel: CancelToken,
    started: Instant,
    deadline: Option<Duration>,
    deadline_hit: bool,
    user_cancelled: bool,
}

fn io_err(path: &Path, e: impl std::fmt::Display) -> EplaceError {
    EplaceError::io(path.display().to_string(), e.to_string())
}

/// The chunked placement a worker thread runs: fixed-size iteration chunks
/// with an atomic checkpoint after each, reporting chunk boundaries, the
/// final result, failures, and cancellation through `tx`. Any send failure
/// means the scheduler is gone (daemon stopping); the worker just exits.
fn run_job(
    manifest: JobManifest,
    job_dir: PathBuf,
    resume: Option<GpCheckpoint>,
    cancel: CancelToken,
    chunk_iters: usize,
    tx: Sender<WorkerMsg>,
) {
    let job = manifest.name.clone();
    let outcome = run_job_inner(&manifest, &job_dir, resume, cancel, chunk_iters, &tx);
    let msg = match outcome {
        Ok(hpwl) => WorkerMsg::Done { job, hpwl },
        Err(e) if e.is_cancelled() => WorkerMsg::Cancelled { job },
        Err(e) => WorkerMsg::Failed {
            job,
            reason: e.to_string(),
        },
    };
    let _ = tx.send(msg);
}

fn run_job_inner(
    manifest: &JobManifest,
    job_dir: &Path,
    resume: Option<GpCheckpoint>,
    cancel: CancelToken,
    chunk_iters: usize,
    tx: &Sender<WorkerMsg>,
) -> Result<f64, EplaceError> {
    let mut design = manifest.design()?;
    let mut cfg: EplaceConfig = manifest.config();
    cfg.cancel = cancel;
    // The pre-GP pipeline is deterministic in (design, seed), so a resumed
    // attempt rebuilds the identical cost landscape and the checkpoint
    // replays the identical trajectory.
    initial_placement(&mut design);
    insert_fillers(&mut design, cfg.seed);
    let problem = PlacementProblem::all_movables(&design);
    let ckpt_path = job_dir.join("job.ckpt");
    let chunk = chunk_iters.max(1);

    let mut trace = Vec::new();
    let mut ck = resume;
    loop {
        let done_iters = ck.as_ref().map_or(0, |c| c.iteration);
        let ask = chunk.min(cfg.max_iterations.saturating_sub(done_iters));
        if ask == 0 {
            // Resumed a job whose final checkpoint already sits at the
            // iteration cap: the crash landed after the final checkpoint.
            // If the result was published too, keep it byte for byte.
            if let Some(hpwl) = read_result_hpwl(&job_dir.join("result.json")) {
                return Ok(hpwl);
            }
            let hpwl = design.hpwl();
            write_result(job_dir, manifest, hpwl, f64::NAN, done_iters, false)?;
            return Ok(hpwl);
        }
        let out = match &ck {
            None => run_global_placement(
                &mut design,
                &problem,
                &cfg,
                Stage::Mgp,
                None,
                Some(ask),
                &mut trace,
            )?,
            Some(c) => resume_global_placement(
                &mut design,
                &problem,
                &cfg,
                Stage::Mgp,
                c,
                Some(ask),
                &mut trace,
            )?,
        };
        let Some(new_ck) = out.checkpoint else {
            // Empty problem fast path: nothing to checkpoint.
            write_result(
                job_dir,
                manifest,
                out.final_hpwl,
                out.final_overflow,
                0,
                out.converged,
            )?;
            return Ok(out.final_hpwl);
        };
        let finished =
            out.converged || out.iterations < ask || new_ck.iteration >= cfg.max_iterations;
        if finished {
            // Result *before* the final checkpoint: a crash between the two
            // re-runs the last chunk on resume and rewrites the identical
            // result, instead of stranding a final checkpoint without one
            // (invariant 2 of the module docs).
            write_result(
                job_dir,
                manifest,
                out.final_hpwl,
                out.final_overflow,
                new_ck.iteration,
                out.converged,
            )?;
        }
        // Durability order: checkpoint on disk *before* the scheduler can
        // ledger it (invariant 1 of the module docs).
        save_checkpoint(&ckpt_path, &new_ck)?;
        let _ = tx.send(WorkerMsg::Checkpointed {
            job: manifest.name.clone(),
            iteration: new_ck.iteration,
        });
        if finished {
            return Ok(out.final_hpwl);
        }
        ck = Some(new_ck);
    }
}

/// The job's published result line. No timestamps or attempt counts: a
/// kill-resumed job must reproduce this file byte for byte, which the
/// resilience tests assert.
fn write_result(
    job_dir: &Path,
    manifest: &JobManifest,
    hpwl: f64,
    overflow: f64,
    iterations: usize,
    converged: bool,
) -> Result<(), EplaceError> {
    let line = Record::new("result")
        .str_field("job", &manifest.name)
        .f64_field("hpwl", hpwl)
        .f64_field("overflow", overflow)
        .u64_field("iterations", iterations as u64)
        .bool_field("converged", converged)
        .into_line();
    let path = job_dir.join("result.json");
    write_atomic(&path, format!("{line}\n").as_bytes()).map_err(|e| io_err(&path, e))
}

fn read_result_hpwl(path: &Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    eplace_obs::json::parse_json(&text)
        .ok()?
        .get("hpwl")?
        .as_f64()
        .filter(|h| h.is_finite())
}

/// Scheduler state for one [`serve`] run.
struct Daemon<'a> {
    cfg: &'a ServeConfig,
    ledger: Ledger,
    queue: VecDeque<QueuedJob>,
    backoff: Vec<(Instant, QueuedJob)>,
    running: BTreeMap<String, Running>,
    attempts: BTreeMap<String, usize>,
    known: BTreeMap<String, bool>, // job -> is_terminal
    tx: Sender<WorkerMsg>,
    rx: std::sync::mpsc::Receiver<WorkerMsg>,
    summary: ServeSummary,
}

impl Daemon<'_> {
    fn ledger_append(&mut self, job: &str, event: &JobEvent) -> Result<(), EplaceError> {
        self.ledger.append(job, event)?;
        self.known.insert(job.to_string(), event.is_terminal());
        Ok(())
    }

    fn quarantine(&mut self, job: &str, reason: &str) -> Result<(), EplaceError> {
        self.ledger_append(
            job,
            &JobEvent::Quarantined {
                reason: reason.to_string(),
            },
        )?;
        self.summary.quarantined += 1;
        let line = Record::new("quarantine")
            .str_field("job", job)
            .str_field("reason", reason)
            .into_line();
        let path = self.cfg.quarantine_dir().join(format!("{job}.json"));
        write_atomic(&path, format!("{line}\n").as_bytes()).map_err(|e| io_err(&path, e))?;
        Ok(())
    }

    /// Rebuilds queue/attempt state from the ledger after a restart
    /// (invariant: every non-terminal job is either re-queued or
    /// quarantined with a recorded reason — never silently dropped).
    fn recover(&mut self) -> Result<(), EplaceError> {
        let records = replay(self.cfg.ledger_path())?;
        for (job, status) in fold(&records) {
            self.known.insert(job.clone(), status.is_terminal());
            self.attempts.insert(job.clone(), status.attempts);
            if status.is_terminal() {
                continue;
            }
            let manifest_path = self.cfg.job_dir(&job).join("manifest.json");
            let manifest = match JobManifest::load(&manifest_path) {
                Ok(m) => JobManifest {
                    name: job.clone(),
                    ..m
                },
                Err(e) => {
                    self.quarantine(&job, &format!("unrecoverable after restart: {e}"))?;
                    continue;
                }
            };
            match status.last {
                JobEvent::Queued | JobEvent::Retry { .. } => {
                    self.queue.push_back(QueuedJob { manifest });
                }
                JobEvent::Failed { reason, .. } => {
                    // Crashed between `failed` and the retry/quarantine
                    // decision: re-decide it now.
                    let attempts = status.attempts;
                    if attempts <= manifest.max_retries {
                        self.ledger_append(
                            &job,
                            &JobEvent::Retry {
                                attempt: attempts + 1,
                                backoff_ms: 0,
                            },
                        )?;
                        self.queue.push_back(QueuedJob { manifest });
                    } else {
                        self.quarantine(
                            &job,
                            &format!("retry budget exhausted ({attempts} attempts): {reason}"),
                        )?;
                    }
                }
                JobEvent::Started { .. }
                | JobEvent::Checkpointed { .. }
                | JobEvent::Resumed { .. } => {
                    // In flight when the previous process died: resume from
                    // the newest durable checkpoint (0 = from scratch).
                    self.ledger_append(
                        &job,
                        &JobEvent::Resumed {
                            iteration: status.checkpoint_iteration.unwrap_or(0),
                        },
                    )?;
                    self.summary.resumed += 1;
                    self.queue.push_back(QueuedJob { manifest });
                }
                JobEvent::Done { .. } | JobEvent::Cancelled | JobEvent::Quarantined { .. } => {}
            }
        }
        Ok(())
    }

    /// Moves new manifests from `incoming/` into the spool and queues them.
    fn intake(&mut self) -> Result<(), EplaceError> {
        let incoming = self.cfg.incoming_dir();
        let Ok(entries) = std::fs::read_dir(&incoming) else {
            return Ok(());
        };
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        for path in files {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("job")
                .to_string();
            if self.known.contains_key(&name) {
                // Duplicate name: park the new manifest without touching the
                // existing job's ledger stream.
                let dup = self.cfg.quarantine_dir().join(format!("{name}.dup.json"));
                std::fs::rename(&path, &dup).map_err(|e| io_err(&path, e))?;
                continue;
            }
            match JobManifest::load(&path) {
                Ok(manifest) => {
                    let dir = self.cfg.job_dir(&name);
                    std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
                    let dest = dir.join("manifest.json");
                    std::fs::rename(&path, &dest).map_err(|e| io_err(&path, e))?;
                    self.ledger_append(&name, &JobEvent::Queued)?;
                    self.queue.push_back(QueuedJob { manifest });
                }
                Err(e) => {
                    self.ledger_append(&name, &JobEvent::Queued)?;
                    self.quarantine(&name, &format!("manifest rejected: {e}"))?;
                    let parked = self
                        .cfg
                        .quarantine_dir()
                        .join(format!("{name}.rejected.json"));
                    let _ = std::fs::rename(&path, &parked);
                }
            }
        }
        Ok(())
    }

    /// Applies `cancel/` marker files to queued and running jobs.
    fn apply_cancel_markers(&mut self) -> Result<(), EplaceError> {
        let dir = self.cfg.cancel_dir();
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return Ok(());
        };
        let mut names: Vec<(String, PathBuf)> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter_map(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .map(|n| (n.to_string(), p.clone()))
            })
            .collect();
        names.sort();
        for (name, marker) in names {
            if let Some(run) = self.running.get_mut(&name) {
                run.user_cancelled = true;
                run.cancel.cancel();
                // Marker removed when the worker confirms; keep it so a
                // crash mid-cancel re-applies on restart.
                continue;
            }
            if let Some(idx) = self.queue.iter().position(|q| q.manifest.name == name) {
                self.queue.remove(idx);
                self.ledger_append(&name, &JobEvent::Cancelled)?;
                self.summary.cancelled += 1;
            } else if let Some(idx) = self
                .backoff
                .iter()
                .position(|(_, q)| q.manifest.name == name)
            {
                self.backoff.remove(idx);
                self.ledger_append(&name, &JobEvent::Cancelled)?;
                self.summary.cancelled += 1;
            }
            let _ = std::fs::remove_file(&marker);
        }
        Ok(())
    }

    /// Cancels running jobs that blew their wall-clock deadline.
    fn enforce_deadlines(&mut self) {
        for run in self.running.values_mut() {
            if let Some(limit) = run.deadline {
                if !run.deadline_hit && !run.user_cancelled && run.started.elapsed() > limit {
                    run.deadline_hit = true;
                    run.cancel.cancel();
                }
            }
        }
    }

    fn finish_running(&mut self, job: &str) {
        if let Some(run) = self.running.remove(job) {
            let _ = run.handle.join();
        }
        let _ = std::fs::remove_file(self.cfg.cancel_dir().join(job));
    }

    /// Drains worker messages, appending the transitions they prove.
    fn process_messages(&mut self) -> Result<(), EplaceError> {
        // Collect first: handling a message appends to the ledger and joins
        // threads, which must not hold the receiver borrow.
        let msgs: Vec<WorkerMsg> = self.rx.try_iter().collect();
        for msg in msgs {
            match msg {
                WorkerMsg::Checkpointed { job, iteration } => {
                    self.ledger_append(&job, &JobEvent::Checkpointed { iteration })?;
                }
                WorkerMsg::Done { job, hpwl } => {
                    self.ledger_append(&job, &JobEvent::Done { hpwl })?;
                    self.summary.done += 1;
                    self.finish_running(&job);
                }
                WorkerMsg::Cancelled { job } => {
                    let deadline_hit = self
                        .running
                        .get(&job)
                        .is_some_and(|r| r.deadline_hit && !r.user_cancelled);
                    if deadline_hit {
                        let limit = self
                            .running
                            .get(&job)
                            .and_then(|r| r.deadline)
                            .map_or(0.0, |d| d.as_secs_f64());
                        self.quarantine(&job, &format!("deadline exceeded ({limit}s)"))?;
                    } else {
                        self.ledger_append(&job, &JobEvent::Cancelled)?;
                        self.summary.cancelled += 1;
                    }
                    self.finish_running(&job);
                }
                WorkerMsg::Failed { job, reason } => {
                    let attempts = self.attempts.get(&job).copied().unwrap_or(1);
                    self.ledger_append(
                        &job,
                        &JobEvent::Failed {
                            reason: reason.clone(),
                            attempt: attempts,
                        },
                    )?;
                    self.finish_running(&job);
                    let manifest_path = self.cfg.job_dir(&job).join("manifest.json");
                    let max_retries = JobManifest::load(&manifest_path)
                        .map(|m| m.max_retries)
                        .unwrap_or(0);
                    if attempts <= max_retries {
                        let backoff_ms = self.cfg.backoff_base_ms << (attempts - 1).min(16);
                        self.ledger_append(
                            &job,
                            &JobEvent::Retry {
                                attempt: attempts + 1,
                                backoff_ms,
                            },
                        )?;
                        if let Ok(m) = JobManifest::load(&manifest_path) {
                            let manifest = JobManifest {
                                name: job.clone(),
                                ..m
                            };
                            self.backoff.push((
                                Instant::now() + Duration::from_millis(backoff_ms),
                                QueuedJob { manifest },
                            ));
                        } else {
                            self.quarantine(&job, "manifest unreadable for retry")?;
                        }
                    } else {
                        self.quarantine(
                            &job,
                            &format!("retry budget exhausted ({attempts} attempts): {reason}"),
                        )?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Promotes retry jobs whose backoff has elapsed.
    fn promote_backoff(&mut self) {
        let now = Instant::now();
        let mut idx = 0;
        while idx < self.backoff.len() {
            if self.backoff[idx].0 <= now {
                let (_, job) = self.backoff.remove(idx);
                self.queue.push_back(job);
            } else {
                idx += 1;
            }
        }
    }

    /// Fills free worker slots from the queue.
    fn start_jobs(&mut self) -> Result<(), EplaceError> {
        while self.running.len() < self.cfg.workers.max(1) {
            let Some(queued) = self.queue.pop_front() else {
                break;
            };
            let manifest = queued.manifest;
            let name = manifest.name.clone();
            let job_dir = self.cfg.job_dir(&name);
            std::fs::create_dir_all(&job_dir).map_err(|e| io_err(&job_dir, e))?;
            let ckpt_path = job_dir.join("job.ckpt");
            let resume = if ckpt_path.exists() {
                match load_checkpoint(&ckpt_path) {
                    Ok(ck) => Some(ck),
                    Err(e) => {
                        // A corrupt checkpoint is never silently recomputed:
                        // quarantine so an operator sees it.
                        self.quarantine(&name, &format!("checkpoint unusable: {e}"))?;
                        continue;
                    }
                }
            } else {
                None
            };
            let attempt = self.attempts.get(&name).copied().unwrap_or(0) + 1;
            self.attempts.insert(name.clone(), attempt);
            self.ledger_append(&name, &JobEvent::Started { attempt })?;
            let cancel = CancelToken::new();
            let deadline = manifest.deadline_secs.map(Duration::from_secs_f64);
            let tx = self.tx.clone();
            let chunk = self.cfg.chunk_iters;
            let token = cancel.clone();
            let handle =
                std::thread::spawn(move || run_job(manifest, job_dir, resume, token, chunk, tx));
            self.running.insert(
                name,
                Running {
                    handle,
                    cancel,
                    started: Instant::now(),
                    deadline,
                    deadline_hit: false,
                    user_cancelled: false,
                },
            );
        }
        Ok(())
    }

    /// Stop-marker shutdown: crash-only semantics. Running jobs are asked to
    /// stop at the next iteration boundary and their last durable chunk
    /// checkpoint stands — *no* terminal ledger event is written, so a later
    /// daemon resumes them exactly like after a real crash.
    fn stop(mut self) -> ServeSummary {
        for run in self.running.values() {
            run.cancel.cancel();
        }
        for (_, run) in std::mem::take(&mut self.running) {
            let _ = run.handle.join();
        }
        self.summary
    }

    fn idle(&self) -> bool {
        self.queue.is_empty() && self.backoff.is_empty() && self.running.is_empty()
    }
}

/// Runs the daemon until the stop marker appears (or, in
/// [`ServeConfig::drain`] mode, until all known work is terminal).
///
/// # Errors
///
/// [`EplaceError::Io`]/[`EplaceError::Job`] on spool or ledger failures the
/// daemon cannot serve through (ledger writes are load-bearing). Individual
/// job failures never abort the daemon — they retry or quarantine.
pub fn serve(cfg: &ServeConfig) -> Result<ServeSummary, EplaceError> {
    for dir in [
        cfg.spool.clone(),
        cfg.incoming_dir(),
        cfg.spool.join("jobs"),
        cfg.quarantine_dir(),
        cfg.cancel_dir(),
    ] {
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
    }
    let ledger = Ledger::open(cfg.ledger_path())?;
    let (tx, rx) = channel();
    let mut daemon = Daemon {
        cfg,
        ledger,
        queue: VecDeque::new(),
        backoff: Vec::new(),
        running: BTreeMap::new(),
        attempts: BTreeMap::new(),
        known: BTreeMap::new(),
        tx,
        rx,
        summary: ServeSummary::default(),
    };
    daemon.recover()?;
    loop {
        if cfg.stop_marker().exists() {
            return Ok(daemon.stop());
        }
        daemon.intake()?;
        daemon.apply_cancel_markers()?;
        daemon.enforce_deadlines();
        daemon.process_messages()?;
        daemon.promote_backoff();
        daemon.start_jobs()?;
        if cfg.drain && daemon.idle() {
            return Ok(daemon.summary);
        }
        std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1)));
    }
}
