//! Job manifests: the JSON files dropped into the spool's `incoming/`
//! directory to request a placement.
//!
//! A manifest names its input (a generated demo design or a Bookshelf
//! `.aux` on disk) plus optional [`eplace_core::EplaceConfig`] overrides and
//! service policy (deadline, retry budget). Everything is optional except
//! the input, so `{"demo": {"cells": 400}}` is a complete job.

use eplace_core::{EplaceConfig, FaultKind, GradientFault};
use eplace_errors::EplaceError;
use eplace_netlist::Design;
use eplace_obs::json::{parse_json, JsonValue};
use std::path::Path;

/// Where the job's design comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSource {
    /// A synthetic ISPD-2005-like design from [`eplace_benchgen`]:
    /// deterministic in `(cells, seed)`, so a job is reproducible from its
    /// manifest alone.
    Demo {
        /// Movable-cell count.
        cells: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A Bookshelf benchmark on disk, by `.aux` path.
    Aux(String),
}

/// One placement job, parsed from a spool manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct JobManifest {
    /// Job name — the manifest's file stem; keys the ledger, the job
    /// directory, and cancel markers.
    pub name: String,
    /// Input design.
    pub source: JobSource,
    /// Start from [`EplaceConfig::fast`] (default) instead of the paper
    /// preset.
    pub fast: bool,
    /// Kernel worker threads (default 1, the bit-reproducible serial path).
    pub threads: usize,
    /// Placer seed override.
    pub seed: Option<u64>,
    /// Stopping overflow τ override.
    pub target_overflow: Option<f64>,
    /// Iteration-cap override.
    pub max_iterations: Option<usize>,
    /// Wall-clock budget for the job; exceeded → cancelled and quarantined.
    pub deadline_secs: Option<f64>,
    /// Retries after a failed attempt before the job is quarantined.
    pub max_retries: usize,
    /// Fault injection for the resilience tests: poison gradient evaluation
    /// N with a NaN (see [`GradientFault`]).
    pub fault_nan_at: Option<usize>,
    /// `true` makes the injected fault fire on every evaluation from the
    /// trigger on — an unrecoverable poison job.
    pub fault_repeat: bool,
}

fn field_u64(v: &JsonValue, key: &str, job: &str) -> Result<Option<u64>, EplaceError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x.as_u64().map(Some).ok_or_else(|| {
            EplaceError::job(job, format!("`{key}` must be a non-negative integer"))
        }),
    }
}

fn field_f64(v: &JsonValue, key: &str, job: &str) -> Result<Option<f64>, EplaceError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_f64()
            .filter(|f| f.is_finite())
            .map(Some)
            .ok_or_else(|| EplaceError::job(job, format!("`{key}` must be a finite number"))),
    }
}

fn field_bool(v: &JsonValue, key: &str, job: &str) -> Result<Option<bool>, EplaceError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_bool()
            .map(Some)
            .ok_or_else(|| EplaceError::job(job, format!("`{key}` must be a boolean"))),
    }
}

impl JobManifest {
    /// Parses a manifest from its JSON text. `name` is the manifest file
    /// stem (the caller knows it; the JSON does not repeat it).
    ///
    /// # Errors
    ///
    /// [`EplaceError::Job`] on malformed JSON, a missing/ambiguous input
    /// section, or an ill-typed field.
    pub fn parse(name: &str, text: &str) -> Result<Self, EplaceError> {
        let v = parse_json(text)
            .map_err(|e| EplaceError::job(name, format!("manifest is not valid JSON: {e}")))?;
        let source = match (v.get("demo"), v.get("aux")) {
            (Some(_), Some(_)) => {
                return Err(EplaceError::job(
                    name,
                    "manifest sets both `demo` and `aux`; pick one input",
                ));
            }
            (Some(demo), None) => {
                let cells = field_u64(demo, "cells", name)?
                    .ok_or_else(|| EplaceError::job(name, "`demo.cells` is required"))?;
                let seed = field_u64(demo, "seed", name)?.unwrap_or(1);
                JobSource::Demo {
                    cells: cells as usize,
                    seed,
                }
            }
            (None, Some(aux)) => JobSource::Aux(
                aux.as_str()
                    .ok_or_else(|| EplaceError::job(name, "`aux` must be a path string"))?
                    .to_string(),
            ),
            (None, None) => {
                return Err(EplaceError::job(
                    name,
                    "manifest needs an input: `demo` or `aux`",
                ));
            }
        };
        Ok(JobManifest {
            name: name.to_string(),
            source,
            fast: field_bool(&v, "fast", name)?.unwrap_or(true),
            threads: field_u64(&v, "threads", name)?.unwrap_or(1) as usize,
            seed: field_u64(&v, "seed", name)?,
            target_overflow: field_f64(&v, "target_overflow", name)?,
            max_iterations: field_u64(&v, "max_iterations", name)?.map(|n| n as usize),
            deadline_secs: field_f64(&v, "deadline_secs", name)?,
            max_retries: field_u64(&v, "max_retries", name)?.unwrap_or(2) as usize,
            fault_nan_at: field_u64(&v, "fault_nan_at", name)?.map(|n| n as usize),
            fault_repeat: field_bool(&v, "fault_repeat", name)?.unwrap_or(false),
        })
    }

    /// Reads and parses `path`; the job name is the file stem.
    ///
    /// # Errors
    ///
    /// [`EplaceError::Io`] when the file cannot be read, plus everything
    /// [`JobManifest::parse`] rejects.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, EplaceError> {
        let path = path.as_ref();
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("job")
            .to_string();
        let text = std::fs::read_to_string(path)
            .map_err(|e| EplaceError::io(path.display().to_string(), e.to_string()))?;
        JobManifest::parse(&name, &text)
    }

    /// The placer configuration this job requests (cancellation token not
    /// yet installed — the worker arms one per attempt).
    pub fn config(&self) -> EplaceConfig {
        let mut cfg = if self.fast {
            EplaceConfig::fast()
        } else {
            EplaceConfig::default()
        };
        cfg.threads = self.threads;
        if let Some(seed) = self.seed {
            cfg.seed = seed;
        }
        if let Some(t) = self.target_overflow {
            cfg.target_overflow = t;
        }
        if let Some(n) = self.max_iterations {
            cfg.max_iterations = n;
        }
        cfg.fault = self.fault_nan_at.map(|at| GradientFault {
            at_evaluation: at,
            component: 0,
            kind: FaultKind::Nan,
            repeat: self.fault_repeat,
        });
        cfg
    }

    /// Materializes the job's input design (generated or read from disk).
    ///
    /// # Errors
    ///
    /// Bookshelf read errors for [`JobSource::Aux`]; demo generation is
    /// infallible.
    pub fn design(&self) -> Result<Design, EplaceError> {
        match &self.source {
            JobSource::Demo { cells, seed } => Ok(eplace_benchgen::BenchmarkConfig::ispd05_like(
                &self.name, *seed,
            )
            .scale(*cells)
            .generate()),
            JobSource::Aux(path) => Ok(eplace_bookshelf::read_aux(path)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_demo_manifest_parses_with_defaults() {
        let m = JobManifest::parse("j1", r#"{"demo": {"cells": 300}}"#).unwrap();
        assert_eq!(
            m.source,
            JobSource::Demo {
                cells: 300,
                seed: 1
            }
        );
        assert!(m.fast);
        assert_eq!(m.threads, 1);
        assert_eq!(m.max_retries, 2);
        assert_eq!(m.deadline_secs, None);
        assert!(m.config().fault.is_none());
    }

    #[test]
    fn full_manifest_round_trips_into_config() {
        let m = JobManifest::parse(
            "j2",
            r#"{"demo": {"cells": 200, "seed": 9}, "fast": true, "threads": 2,
                "seed": 123, "target_overflow": 0.2, "max_iterations": 40,
                "deadline_secs": 1.5, "max_retries": 1,
                "fault_nan_at": 3, "fault_repeat": true}"#,
        )
        .unwrap();
        let cfg = m.config();
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.seed, 123);
        assert_eq!(cfg.target_overflow, 0.2);
        assert_eq!(cfg.max_iterations, 40);
        let fault = cfg.fault.unwrap();
        assert_eq!(fault.at_evaluation, 3);
        assert!(fault.repeat);
        assert_eq!(m.deadline_secs, Some(1.5));
    }

    #[test]
    fn bad_manifests_are_typed_errors() {
        for (text, needle) in [
            ("{", "not valid JSON"),
            ("{}", "needs an input"),
            (r#"{"demo": {"cells": 1}, "aux": "x.aux"}"#, "pick one"),
            (r#"{"demo": {}}"#, "cells"),
            (r#"{"demo": {"cells": 10}, "threads": -1}"#, "threads"),
            (r#"{"aux": 42}"#, "path string"),
        ] {
            let err = JobManifest::parse("bad", text).unwrap_err();
            assert!(matches!(err, EplaceError::Job { .. }), "{text}");
            assert!(err.to_string().contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn demo_design_is_deterministic_in_the_manifest() {
        let m = JobManifest::parse("det", r#"{"demo": {"cells": 120, "seed": 4}}"#).unwrap();
        let a = m.design().unwrap();
        let b = m.design().unwrap();
        assert_eq!(a.hpwl().to_bits(), b.hpwl().to_bits());
    }
}
