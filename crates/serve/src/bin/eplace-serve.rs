//! The `eplace-serve` daemon binary.
//!
//! ```text
//! eplace-serve --spool DIR [--workers N] [--chunk-iters N] [--poll-ms N]
//!              [--backoff-ms N] [--drain]
//! ```
//!
//! Submit work by dropping `<name>.json` manifests into `DIR/incoming/`;
//! cancel with `touch DIR/cancel/<name>`; stop the daemon with
//! `touch DIR/stop` (crash-only: in-flight jobs resume from their last
//! durable checkpoint on the next start). `--drain` exits once all known
//! work is terminal instead of serving forever.

use eplace_serve::{serve, ServeConfig};

fn usage() -> ! {
    eprintln!(
        "usage: eplace-serve --spool DIR [--workers N] [--chunk-iters N] \
         [--poll-ms N] [--backoff-ms N] [--drain]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("eplace-serve: {flag} needs a value");
        usage();
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("eplace-serve: bad value `{value}` for {flag}");
            usage();
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut spool: Option<String> = None;
    let mut cfg_workers = None;
    let mut cfg_chunk = None;
    let mut cfg_poll = None;
    let mut cfg_backoff = None;
    let mut drain = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spool" => spool = Some(parse("--spool", args.next())),
            "--workers" => cfg_workers = Some(parse("--workers", args.next())),
            "--chunk-iters" => cfg_chunk = Some(parse("--chunk-iters", args.next())),
            "--poll-ms" => cfg_poll = Some(parse("--poll-ms", args.next())),
            "--backoff-ms" => cfg_backoff = Some(parse("--backoff-ms", args.next())),
            "--drain" => drain = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("eplace-serve: unknown argument `{other}`");
                usage();
            }
        }
    }
    let Some(spool) = spool else {
        eprintln!("eplace-serve: --spool is required");
        usage();
    };
    let mut cfg = ServeConfig::new(spool);
    if let Some(w) = cfg_workers {
        cfg.workers = w;
    }
    if let Some(c) = cfg_chunk {
        cfg.chunk_iters = c;
    }
    if let Some(p) = cfg_poll {
        cfg.poll_ms = p;
    }
    if let Some(b) = cfg_backoff {
        cfg.backoff_base_ms = b;
    }
    cfg.drain = drain;
    match serve(&cfg) {
        Ok(summary) => {
            println!(
                "eplace-serve: done={} quarantined={} cancelled={} resumed={}",
                summary.done, summary.quarantined, summary.cancelled, summary.resumed
            );
        }
        Err(e) => {
            eprintln!("eplace-serve: fatal: {e}");
            std::process::exit(1);
        }
    }
}
