//! The replayable job ledger: an append-only JSONL log of every job state
//! transition the daemon performs.
//!
//! The ledger is the daemon's source of truth across crashes. Every record
//! is flushed and fsynced before the daemon acts on the transition it
//! describes, and records that reference a checkpoint are only appended
//! *after* the checkpoint file is durably on disk — so on restart, replaying
//! the ledger reconstructs exactly which jobs are terminal, which are
//! in-flight (and from which checkpoint they resume), and which are waiting.
//!
//! Because a crash — SIGKILL included — can land mid-append, the replayer
//! tolerates exactly one torn record: the final line. Anything malformed
//! before that is corruption and surfaces as a typed error.

use eplace_errors::EplaceError;
use eplace_obs::json::parse_json;
use eplace_obs::Record;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One job state transition.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// Manifest accepted into the spool.
    Queued,
    /// A worker began attempt `attempt` (1-based).
    Started {
        /// Attempt number, 1-based.
        attempt: usize,
    },
    /// A durable checkpoint at `iteration` is on disk (the file was fsynced
    /// before this record was appended).
    Checkpointed {
        /// Global-placement iteration of the checkpoint.
        iteration: usize,
    },
    /// Restart recovery rescheduled this in-flight job; it will resume from
    /// the checkpoint at `iteration` (0 = from scratch).
    Resumed {
        /// Iteration the next attempt resumes from.
        iteration: usize,
    },
    /// A failed attempt earned another try after a backoff.
    Retry {
        /// Attempt number the retry will start (1-based).
        attempt: usize,
        /// Backoff delay before the retry becomes runnable.
        backoff_ms: u64,
    },
    /// Terminal: placement finished; `hpwl` is the committed wirelength.
    Done {
        /// Final HPWL.
        hpwl: f64,
    },
    /// Attempt `attempt` failed with `reason` (not terminal — the scheduler
    /// decides retry vs. quarantine next).
    Failed {
        /// Failure description.
        reason: String,
        /// Attempt that failed, 1-based.
        attempt: usize,
    },
    /// Terminal: cancelled by a spool cancel marker.
    Cancelled,
    /// Terminal: retry budget or deadline exhausted; the job is parked in
    /// `quarantine/` and the daemon keeps serving other jobs.
    Quarantined {
        /// Why the job was given up on.
        reason: String,
    },
}

impl JobEvent {
    /// The `event` discriminator string used on disk.
    pub fn key(&self) -> &'static str {
        match self {
            JobEvent::Queued => "queued",
            JobEvent::Started { .. } => "started",
            JobEvent::Checkpointed { .. } => "checkpointed",
            JobEvent::Resumed { .. } => "resumed",
            JobEvent::Retry { .. } => "retry",
            JobEvent::Done { .. } => "done",
            JobEvent::Failed { .. } => "failed",
            JobEvent::Cancelled => "cancelled",
            JobEvent::Quarantined { .. } => "quarantined",
        }
    }

    /// Terminal events end a job's life; nothing may follow them.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobEvent::Done { .. } | JobEvent::Cancelled | JobEvent::Quarantined { .. }
        )
    }
}

/// One ledger line: a sequenced [`JobEvent`] for a named job.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRecord {
    /// Strictly increasing across the whole ledger (restarts included).
    pub seq: u64,
    /// Job name.
    pub job: String,
    /// The transition.
    pub event: JobEvent,
}

/// Append-side handle. Single-writer by construction: only the scheduler
/// thread appends, so seq order is total without locking.
pub struct Ledger {
    file: std::fs::File,
    path: PathBuf,
    next_seq: u64,
}

impl Ledger {
    /// Opens (or creates) the ledger at `path` for appending, replaying any
    /// existing records so sequence numbers continue where the previous
    /// daemon process stopped.
    ///
    /// # Errors
    ///
    /// [`EplaceError::Io`] on filesystem trouble; [`EplaceError::Job`] when
    /// the existing ledger is corrupt beyond a torn final line.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, EplaceError> {
        let path = path.as_ref().to_path_buf();
        let next_seq = if path.exists() {
            replay(&path)?.last().map_or(0, |r| r.seq) + 1
        } else {
            1
        };
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| EplaceError::io(path.display().to_string(), e.to_string()))?;
        Ok(Ledger {
            file,
            path,
            next_seq,
        })
    }

    /// Appends one record, flushing and fsyncing before returning, so a
    /// crash after `append` returns can never lose the transition.
    ///
    /// # Errors
    ///
    /// [`EplaceError::Io`] when the write, flush, or fsync fails — ledger
    /// writes are load-bearing (unlike journal telemetry) and must not be
    /// silently dropped.
    pub fn append(&mut self, job: &str, event: &JobEvent) -> Result<u64, EplaceError> {
        let seq = self.next_seq;
        let mut rec = Record::new("job")
            .u64_field("seq", seq)
            .str_field("job", job)
            .str_field("event", event.key());
        rec = match event {
            JobEvent::Started { attempt } => rec.u64_field("attempt", *attempt as u64),
            JobEvent::Checkpointed { iteration } | JobEvent::Resumed { iteration } => {
                rec.u64_field("iter", *iteration as u64)
            }
            JobEvent::Retry {
                attempt,
                backoff_ms,
            } => rec
                .u64_field("attempt", *attempt as u64)
                .u64_field("backoff_ms", *backoff_ms),
            JobEvent::Done { hpwl } => rec.f64_field("hpwl", *hpwl),
            JobEvent::Failed { reason, attempt } => rec
                .str_field("reason", reason)
                .u64_field("attempt", *attempt as u64),
            JobEvent::Quarantined { reason } => rec.str_field("reason", reason),
            JobEvent::Queued | JobEvent::Cancelled => rec,
        };
        let io_err =
            |e: std::io::Error| EplaceError::io(self.path.display().to_string(), e.to_string());
        writeln!(self.file, "{}", rec.into_line()).map_err(io_err)?;
        self.file.flush().map_err(io_err)?;
        self.file.sync_data().map_err(io_err)?;
        self.next_seq += 1;
        Ok(seq)
    }
}

fn parse_record(line: &str) -> Result<LedgerRecord, String> {
    let v = parse_json(line).map_err(|e| e.to_string())?;
    if v.get("type").and_then(|t| t.as_str()) != Some("job") {
        return Err("record type is not \"job\"".to_string());
    }
    let seq = v.get("seq").and_then(|s| s.as_u64()).ok_or("missing seq")?;
    let job = v
        .get("job")
        .and_then(|j| j.as_str())
        .ok_or("missing job")?
        .to_string();
    let kind = v
        .get("event")
        .and_then(|e| e.as_str())
        .ok_or("missing event")?;
    let attempt = || {
        v.get("attempt")
            .and_then(|a| a.as_u64())
            .map(|a| a as usize)
            .ok_or("missing attempt")
    };
    let iter = || {
        v.get("iter")
            .and_then(|i| i.as_u64())
            .map(|i| i as usize)
            .ok_or("missing iter")
    };
    let reason = || {
        v.get("reason")
            .and_then(|r| r.as_str())
            .map(str::to_string)
            .ok_or("missing reason")
    };
    let event = match kind {
        "queued" => JobEvent::Queued,
        "started" => JobEvent::Started {
            attempt: attempt()?,
        },
        "checkpointed" => JobEvent::Checkpointed { iteration: iter()? },
        "resumed" => JobEvent::Resumed { iteration: iter()? },
        "retry" => JobEvent::Retry {
            attempt: attempt()?,
            backoff_ms: v
                .get("backoff_ms")
                .and_then(|b| b.as_u64())
                .ok_or("missing backoff_ms")?,
        },
        "done" => JobEvent::Done {
            hpwl: v
                .get("hpwl")
                .and_then(|h| h.as_f64())
                .filter(|h| h.is_finite())
                .ok_or("done without a finite hpwl")?,
        },
        "failed" => JobEvent::Failed {
            reason: reason()?,
            attempt: attempt()?,
        },
        "cancelled" => JobEvent::Cancelled,
        "quarantined" => JobEvent::Quarantined { reason: reason()? },
        other => return Err(format!("unknown event `{other}`")),
    };
    Ok(LedgerRecord { seq, job, event })
}

/// Replays the ledger at `path` into its record sequence.
///
/// A crash can tear at most the final line (records are fsynced one at a
/// time by a single writer), so a parse failure on the last line drops that
/// line; a parse failure anywhere earlier, or a non-increasing sequence
/// number, is corruption and errors out.
///
/// # Errors
///
/// [`EplaceError::Io`] when the file cannot be read; [`EplaceError::Job`]
/// (job = the ledger path) on mid-file corruption.
pub fn replay(path: impl AsRef<Path>) -> Result<Vec<LedgerRecord>, EplaceError> {
    let path = path.as_ref();
    let display = path.display().to_string();
    let text = std::fs::read_to_string(path)
        .map_err(|e| EplaceError::io(display.clone(), e.to_string()))?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut records = Vec::with_capacity(lines.len());
    for (idx, line) in lines.iter().enumerate() {
        match parse_record(line) {
            Ok(rec) => {
                if let Some(prev) = records.last() {
                    let prev: &LedgerRecord = prev;
                    if rec.seq <= prev.seq {
                        return Err(EplaceError::job(
                            &display,
                            format!(
                                "ledger line {}: seq {} does not increase past {}",
                                idx + 1,
                                rec.seq,
                                prev.seq
                            ),
                        ));
                    }
                }
                records.push(rec);
            }
            Err(e) if idx + 1 == lines.len() => {
                // Torn final record from a mid-append crash: recoverable by
                // construction — the daemon had not yet acted on it.
                let _ = e;
                break;
            }
            Err(e) => {
                return Err(EplaceError::job(
                    &display,
                    format!("ledger line {} is corrupt: {e}", idx + 1),
                ));
            }
        }
    }
    Ok(records)
}

/// Where a job stands after replaying the ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Last event recorded for the job.
    pub last: JobEvent,
    /// Attempts started so far.
    pub attempts: usize,
    /// Iteration of the newest durable checkpoint, if any.
    pub checkpoint_iteration: Option<usize>,
}

impl JobStatus {
    /// Whether the job's life is over (done, cancelled, or quarantined).
    pub fn is_terminal(&self) -> bool {
        self.last.is_terminal()
    }
}

/// Folds a replayed record sequence into per-job status, keyed by job name
/// (ordered, so recovery scheduling is deterministic).
pub fn fold(records: &[LedgerRecord]) -> BTreeMap<String, JobStatus> {
    let mut jobs: BTreeMap<String, JobStatus> = BTreeMap::new();
    for rec in records {
        let entry = jobs.entry(rec.job.clone()).or_insert(JobStatus {
            last: JobEvent::Queued,
            attempts: 0,
            checkpoint_iteration: None,
        });
        match &rec.event {
            JobEvent::Started { attempt } => entry.attempts = (*attempt).max(entry.attempts),
            JobEvent::Checkpointed { iteration } => {
                entry.checkpoint_iteration = Some(*iteration);
            }
            _ => {}
        }
        entry.last = rec.event.clone();
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eplace_ledger_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("ledger.jsonl")
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("rt");
        let _ = std::fs::remove_file(&path);
        let mut ledger = Ledger::open(&path).unwrap();
        let events = [
            ("a", JobEvent::Queued),
            ("a", JobEvent::Started { attempt: 1 }),
            ("a", JobEvent::Checkpointed { iteration: 10 }),
            (
                "a",
                JobEvent::Failed {
                    reason: "diverged".into(),
                    attempt: 1,
                },
            ),
            (
                "a",
                JobEvent::Retry {
                    attempt: 2,
                    backoff_ms: 50,
                },
            ),
            ("a", JobEvent::Started { attempt: 2 }),
            ("a", JobEvent::Done { hpwl: 123.5 }),
            ("b", JobEvent::Queued),
            ("b", JobEvent::Cancelled),
            (
                "c",
                JobEvent::Quarantined {
                    reason: "deadline exceeded".into(),
                },
            ),
        ];
        for (job, ev) in &events {
            ledger.append(job, ev).unwrap();
        }
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), events.len());
        for (rec, (job, ev)) in records.iter().zip(&events) {
            assert_eq!(&rec.job, job);
            assert_eq!(&rec.event, ev);
        }
        assert_eq!(records[0].seq, 1);
        assert!(records.windows(2).all(|w| w[1].seq == w[0].seq + 1));

        let jobs = fold(&records);
        assert_eq!(jobs["a"].last, JobEvent::Done { hpwl: 123.5 });
        assert_eq!(jobs["a"].attempts, 2);
        assert_eq!(jobs["a"].checkpoint_iteration, Some(10));
        assert!(jobs["b"].is_terminal());
        assert!(jobs["c"].is_terminal());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn seq_continues_across_reopen() {
        let path = tmp("seq");
        let _ = std::fs::remove_file(&path);
        {
            let mut ledger = Ledger::open(&path).unwrap();
            ledger.append("a", &JobEvent::Queued).unwrap();
        }
        {
            let mut ledger = Ledger::open(&path).unwrap();
            ledger
                .append("a", &JobEvent::Started { attempt: 1 })
                .unwrap();
        }
        let records = replay(&path).unwrap();
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_dropped_mid_file_corruption_is_an_error() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let mut ledger = Ledger::open(&path).unwrap();
        ledger.append("a", &JobEvent::Queued).unwrap();
        ledger
            .append("a", &JobEvent::Started { attempt: 1 })
            .unwrap();
        // Simulate a mid-append SIGKILL: half a record, no newline.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"type\":\"job\",\"seq\":3,\"job\":\"a\",\"ev");
        std::fs::write(&path, &text).unwrap();
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 2);

        // The same garbage mid-file is corruption, not a torn tail.
        let mut lines: Vec<String> = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        lines.insert(1, "{\"type\":\"job\",\"seq".to_string());
        std::fs::write(&path, lines.join("\n")).unwrap();
        let err = replay(&path).unwrap_err();
        assert!(matches!(err, EplaceError::Job { .. }));
        assert!(err.to_string().contains("line 2"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_monotone_seq_is_corruption() {
        let path = tmp("mono");
        std::fs::write(
            &path,
            concat!(
                "{\"type\":\"job\",\"seq\":2,\"job\":\"a\",\"event\":\"queued\"}\n",
                "{\"type\":\"job\",\"seq\":2,\"job\":\"a\",\"event\":\"started\",\"attempt\":1}\n",
                "{\"type\":\"job\",\"seq\":3,\"job\":\"a\",\"event\":\"cancelled\"}\n",
            ),
        )
        .unwrap();
        let err = replay(&path).unwrap_err();
        assert!(err.to_string().contains("does not increase"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn done_requires_a_finite_hpwl() {
        let path = tmp("hpwl");
        std::fs::write(
            &path,
            concat!(
                "{\"type\":\"job\",\"seq\":1,\"job\":\"a\",\"event\":\"done\",\"hpwl\":null}\n",
                "{\"type\":\"job\",\"seq\":2,\"job\":\"a\",\"event\":\"queued\"}\n",
            ),
        )
        .unwrap();
        let err = replay(&path).unwrap_err();
        assert!(err.to_string().contains("finite hpwl"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
