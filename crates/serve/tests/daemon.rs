//! In-process daemon tests: intake, completion, retry/quarantine policy,
//! deadlines, cancellation, and stop-marker resume.

use eplace_serve::{fold, replay, serve, JobEvent, ServeConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eplace_serve_{tag}_{}_{}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "_")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("incoming")).unwrap();
    dir
}

fn submit(dir: &Path, name: &str, body: &str) {
    std::fs::write(dir.join("incoming").join(format!("{name}.json")), body).unwrap();
}

fn wait_for(path: &Path, needle: &str, timeout: Duration) {
    let start = Instant::now();
    loop {
        if std::fs::read_to_string(path)
            .map(|t| t.contains(needle))
            .unwrap_or(false)
        {
            return;
        }
        assert!(
            start.elapsed() < timeout,
            "timed out waiting for {needle:?} in {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A small healthy job: converges or caps quickly.
const HEALTHY: &str =
    r#"{"demo": {"cells": 140, "seed": 3}, "max_iterations": 40, "target_overflow": 0.3}"#;

#[test]
fn drain_completes_submitted_jobs_and_ledger_replays_clean() {
    let dir = spool("drain");
    submit(&dir, "alpha", HEALTHY);
    submit(
        &dir,
        "beta",
        r#"{"demo": {"cells": 120, "seed": 8}, "max_iterations": 30, "target_overflow": 0.3}"#,
    );
    let mut cfg = ServeConfig::new(&dir);
    cfg.drain = true;
    cfg.chunk_iters = 10;
    let summary = serve(&cfg).unwrap();
    assert_eq!(summary.done, 2);
    assert_eq!(summary.quarantined, 0);

    let jobs = fold(&replay(cfg.ledger_path()).unwrap());
    for name in ["alpha", "beta"] {
        assert!(
            matches!(jobs[name].last, JobEvent::Done { hpwl } if hpwl.is_finite()),
            "{name}: {:?}",
            jobs[name].last
        );
        let result = cfg.job_dir(name).join("result.json");
        let text = std::fs::read_to_string(&result).unwrap();
        assert!(text.contains("\"hpwl\":"), "{text}");
        assert!(cfg.job_dir(name).join("job.ckpt").exists());
        assert!(cfg.job_dir(name).join("manifest.json").exists());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poison_job_is_quarantined_while_healthy_job_completes() {
    let dir = spool("poison");
    // Repeating NaN fault at gradient evaluation 3: every attempt exhausts
    // the sentinel's rollback budget, so the daemon's retry budget (1 retry)
    // drains and the job is quarantined.
    submit(
        &dir,
        "poison",
        r#"{"demo": {"cells": 120, "seed": 5}, "max_iterations": 40,
            "fault_nan_at": 3, "fault_repeat": true, "max_retries": 1}"#,
    );
    submit(&dir, "healthy", HEALTHY);
    let mut cfg = ServeConfig::new(&dir);
    cfg.drain = true;
    cfg.chunk_iters = 10;
    cfg.backoff_base_ms = 10;
    let summary = serve(&cfg).unwrap();
    assert_eq!(summary.done, 1, "healthy job must complete");
    assert_eq!(summary.quarantined, 1);

    let jobs = fold(&replay(cfg.ledger_path()).unwrap());
    assert!(matches!(jobs["healthy"].last, JobEvent::Done { .. }));
    assert!(
        matches!(&jobs["poison"].last, JobEvent::Quarantined { reason }
            if reason.contains("retry budget exhausted")),
        "{:?}",
        jobs["poison"].last
    );
    assert_eq!(jobs["poison"].attempts, 2, "initial attempt + 1 retry");
    let reason_file = cfg.quarantine_dir().join("poison.json");
    assert!(reason_file.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_exceeded_job_is_quarantined() {
    let dir = spool("deadline");
    // Big enough that 30 ms elapse long before the iteration cap.
    submit(
        &dir,
        "slow",
        r#"{"demo": {"cells": 900, "seed": 2}, "max_iterations": 3000,
            "target_overflow": 0.0001, "deadline_secs": 0.03}"#,
    );
    let mut cfg = ServeConfig::new(&dir);
    cfg.drain = true;
    cfg.chunk_iters = 5;
    cfg.poll_ms = 5;
    let summary = serve(&cfg).unwrap();
    assert_eq!(summary.quarantined, 1);
    let jobs = fold(&replay(cfg.ledger_path()).unwrap());
    assert!(
        matches!(&jobs["slow"].last, JobEvent::Quarantined { reason }
            if reason.contains("deadline exceeded")),
        "{:?}",
        jobs["slow"].last
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_marker_stops_a_running_job() {
    let dir = spool("cancel");
    submit(
        &dir,
        "longjob",
        r#"{"demo": {"cells": 900, "seed": 7}, "max_iterations": 3000,
            "target_overflow": 0.0001}"#,
    );
    let mut cfg = ServeConfig::new(&dir);
    cfg.drain = true;
    cfg.chunk_iters = 5;
    cfg.poll_ms = 5;
    let ledger_path = cfg.ledger_path();
    let cancel_dir = cfg.cancel_dir();
    let handle = std::thread::spawn(move || serve(&cfg).unwrap());
    // Cancel once the job is provably running.
    wait_for(
        &ledger_path,
        "\"event\":\"started\"",
        Duration::from_secs(60),
    );
    while !cancel_dir.exists() {
        std::thread::sleep(Duration::from_millis(2));
    }
    std::fs::write(cancel_dir.join("longjob"), b"").unwrap();
    let summary = handle.join().unwrap();
    assert_eq!(summary.cancelled, 1);
    let jobs = fold(&replay(&ledger_path).unwrap());
    assert_eq!(jobs["longjob"].last, JobEvent::Cancelled);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stop_marker_preserves_inflight_work_and_resume_is_bit_identical() {
    // Reference: one uninterrupted daemon run.
    let job = r#"{"demo": {"cells": 200, "seed": 11}, "max_iterations": 60,
                  "target_overflow": 0.0001}"#;
    let ref_dir = spool("stopref");
    submit(&ref_dir, "job1", job);
    let mut ref_cfg = ServeConfig::new(&ref_dir);
    ref_cfg.drain = true;
    ref_cfg.chunk_iters = 8;
    assert_eq!(serve(&ref_cfg).unwrap().done, 1);
    let ref_result = std::fs::read(ref_cfg.job_dir("job1").join("result.json")).unwrap();
    let ref_ckpt = std::fs::read(ref_cfg.job_dir("job1").join("job.ckpt")).unwrap();

    // Victim: same manifest, daemon stopped mid-job via the stop marker
    // (crash-only shutdown: no terminal event, checkpoint stands).
    let vic_dir = spool("stopvic");
    submit(&vic_dir, "job1", job);
    let mut vic_cfg = ServeConfig::new(&vic_dir);
    vic_cfg.chunk_iters = 8;
    vic_cfg.poll_ms = 2;
    let ledger_path = vic_cfg.ledger_path();
    let stop = vic_cfg.stop_marker();
    let serve_cfg = vic_cfg.clone();
    let handle = std::thread::spawn(move || serve(&serve_cfg).unwrap());
    wait_for(
        &ledger_path,
        "\"event\":\"checkpointed\"",
        Duration::from_secs(60),
    );
    std::fs::write(&stop, b"").unwrap();
    handle.join().unwrap();

    let jobs = fold(&replay(&ledger_path).unwrap());
    assert!(
        !jobs["job1"].is_terminal(),
        "stop must not terminate the job: {:?}",
        jobs["job1"].last
    );

    // Restart in drain mode: recovery resumes from the durable checkpoint
    // and the finished artifacts are byte-identical to the reference.
    std::fs::remove_file(&stop).unwrap();
    let mut resume_cfg = vic_cfg.clone();
    resume_cfg.drain = true;
    let summary = serve(&resume_cfg).unwrap();
    assert_eq!(summary.resumed, 1);
    assert_eq!(summary.done, 1);
    let vic_result = std::fs::read(vic_cfg.job_dir("job1").join("result.json")).unwrap();
    let vic_ckpt = std::fs::read(vic_cfg.job_dir("job1").join("job.ckpt")).unwrap();
    assert_eq!(vic_result, ref_result, "result.json must be bit-identical");
    assert_eq!(vic_ckpt, ref_ckpt, "final checkpoint must be bit-identical");

    let records = replay(&ledger_path).unwrap();
    assert!(records
        .iter()
        .any(|r| matches!(r.event, JobEvent::Resumed { .. })));
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&vic_dir);
}

#[test]
fn invalid_manifest_is_quarantined_not_fatal() {
    let dir = spool("badmanifest");
    submit(&dir, "broken", r#"{"this is not": "a job"}"#);
    submit(&dir, "fine", HEALTHY);
    let mut cfg = ServeConfig::new(&dir);
    cfg.drain = true;
    cfg.chunk_iters = 10;
    let summary = serve(&cfg).unwrap();
    assert_eq!(summary.done, 1);
    assert_eq!(summary.quarantined, 1);
    let jobs = fold(&replay(cfg.ledger_path()).unwrap());
    assert!(
        matches!(&jobs["broken"].last, JobEvent::Quarantined { reason }
        if reason.contains("manifest rejected"))
    );
    assert!(cfg.quarantine_dir().join("broken.rejected.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
