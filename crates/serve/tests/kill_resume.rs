//! The headline crash-recovery guarantee, tested against the real binary:
//! SIGKILL the daemon mid-job, restart it, and the resumed placement's
//! artifacts are byte-identical to an uninterrupted run's.

use eplace_serve::{fold, replay, JobEvent, ServeConfig};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_eplace-serve");

const JOB: &str = r#"{"demo": {"cells": 220, "seed": 17}, "max_iterations": 64,
                      "target_overflow": 0.0001}"#;

fn spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eplace_kill_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("incoming")).unwrap();
    std::fs::write(dir.join("incoming").join("job1.json"), JOB).unwrap();
    dir
}

fn drain(dir: &Path) {
    let status = Command::new(BIN)
        .args([
            "--spool",
            dir.to_str().unwrap(),
            "--chunk-iters",
            "8",
            "--poll-ms",
            "2",
            "--drain",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .status()
        .unwrap();
    assert!(status.success(), "daemon drain run failed");
}

#[test]
fn sigkill_mid_job_then_restart_is_bit_identical_to_uninterrupted() {
    // Reference: the same job served start-to-finish by one process.
    let ref_dir = spool("ref");
    drain(&ref_dir);
    let ref_cfg = ServeConfig::new(&ref_dir);
    let ref_result = std::fs::read(ref_cfg.job_dir("job1").join("result.json")).unwrap();
    let ref_ckpt = std::fs::read(ref_cfg.job_dir("job1").join("job.ckpt")).unwrap();
    let ref_jobs = fold(&replay(ref_cfg.ledger_path()).unwrap());
    assert!(matches!(ref_jobs["job1"].last, JobEvent::Done { .. }));

    // Victim: serve without --drain, SIGKILL once a durable checkpoint is
    // ledgered (i.e., provably mid-job).
    let vic_dir = spool("vic");
    let vic_cfg = ServeConfig::new(&vic_dir);
    let mut child = Command::new(BIN)
        .args([
            "--spool",
            vic_dir.to_str().unwrap(),
            "--chunk-iters",
            "8",
            "--poll-ms",
            "2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap();
    let ledger_path = vic_cfg.ledger_path();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let ledgered_checkpoint = std::fs::read_to_string(&ledger_path)
            .map(|t| t.contains("\"event\":\"checkpointed\""))
            .unwrap_or(false);
        if ledgered_checkpoint {
            break;
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("daemon exited prematurely: {status}");
        }
        assert!(Instant::now() < deadline, "no checkpoint within 120s");
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().unwrap(); // SIGKILL on unix: no destructors, no flushes
    child.wait().unwrap();

    // The job must be non-terminal in the ledger (the kill was mid-job) and
    // the ledger must replay clean despite the kill.
    let jobs = fold(&replay(&ledger_path).unwrap());
    assert!(
        !jobs["job1"].is_terminal(),
        "kill landed after completion; the test did not exercise resume: {:?}",
        jobs["job1"].last
    );

    // Restart: recovery replays the ledger, resumes from the durable
    // checkpoint, and finishes the job.
    drain(&vic_dir);
    let records = replay(&ledger_path).unwrap();
    assert!(
        records
            .iter()
            .any(|r| matches!(r.event, JobEvent::Resumed { iteration } if iteration > 0)),
        "restart must record a resume from a checkpoint"
    );
    let jobs = fold(&records);
    assert!(matches!(jobs["job1"].last, JobEvent::Done { .. }));

    let vic_result = std::fs::read(vic_cfg.job_dir("job1").join("result.json")).unwrap();
    let vic_ckpt = std::fs::read(vic_cfg.job_dir("job1").join("job.ckpt")).unwrap();
    assert_eq!(
        vic_result, ref_result,
        "kill-resumed result.json differs from uninterrupted run"
    );
    assert_eq!(
        vic_ckpt, ref_ckpt,
        "kill-resumed final checkpoint differs from uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&vic_dir);
}
