//! Timings of the spectral substrate: the FFT/DCT kernels whose O(n log n)
//! scaling underwrites the paper's density-solve complexity claim (§IV),
//! plus the 2-D transform round in serial and row/column-parallel form.
//!
//! Thread count comes from `EPLACE_BENCH_THREADS` (default: all hardware
//! threads). On a single-core host the parallel variant measures pure
//! spawn/partition overhead, so expect speedups ≤ 1 there.

use eplace_bench::timing::{bench, report_speedup};
use eplace_exec::ExecConfig;
use eplace_spectral::{Complex, DctPlan, FftPlan, SpectralEngine, Transform2d};
use std::hint::black_box;

fn bench_fft() {
    println!("fft_forward");
    for &n in &[256usize, 1024, 4096] {
        let plan = FftPlan::new(n).unwrap();
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        bench(&format!("fft_forward/{n}"), 50, || {
            let mut buf = data.clone();
            plan.forward(black_box(&mut buf));
            buf
        });
    }
}

fn bench_dct() {
    println!("dct2");
    for &n in &[256usize, 1024] {
        let plan = DctPlan::new(n).unwrap();
        let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        bench(&format!("dct2/{n}"), 50, || plan.dct2(black_box(&data)));
    }
}

fn bench_transform2d() {
    let exec = match std::env::var("EPLACE_BENCH_THREADS") {
        Ok(v) => ExecConfig::with_threads(v.parse().expect("bad EPLACE_BENCH_THREADS")),
        Err(_) => ExecConfig::auto(),
    };
    println!("poisson_transform_round");
    for &n in &[64usize, 128, 256, 512] {
        let data: Vec<f64> = (0..n * n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let run = |label: &str, exec: ExecConfig, engine: SpectralEngine| {
            let mut t = Transform2d::new(n, n)
                .unwrap_or_else(|e| panic!("{e}"))
                .with_exec(exec)
                .with_engine(engine);
            bench(&format!("{label}/{n}x{n}"), 20, || {
                // One density-solve's worth of transforms: analysis + three
                // syntheses.
                let mut a = data.clone();
                t.dct2(&mut a);
                let mut psi = a.clone();
                t.dct3(&mut psi);
                let mut fx = a.clone();
                t.dst3_x(&mut fx);
                let mut fy = a;
                t.dst3_y(&mut fy);
                (psi, fx, fy)
            })
        };
        let serial = run("serial", ExecConfig::serial(), SpectralEngine::V1);
        let parallel = run(
            &format!("threads={}", exec.threads()),
            exec,
            SpectralEngine::V1,
        );
        report_speedup(&format!("transform_round/{n}x{n}"), &serial, &parallel);
        let serial_v2 = run("serial-v2", ExecConfig::serial(), SpectralEngine::V2);
        report_speedup(&format!("engine_v2_serial/{n}x{n}"), &serial, &serial_v2);
        let parallel_v2 = run(
            &format!("threads={}-v2", exec.threads()),
            exec,
            SpectralEngine::V2,
        );
        report_speedup(
            &format!("engine_v2_parallel/{n}x{n}"),
            &parallel,
            &parallel_v2,
        );
    }
}

fn main() {
    bench_fft();
    bench_dct();
    bench_transform2d();
}
