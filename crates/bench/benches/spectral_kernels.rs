//! Criterion benches of the spectral substrate: the FFT/DCT kernels whose
//! O(n log n) scaling underwrites the paper's density-solve complexity
//! claim (§IV).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eplace_spectral::{Complex, DctPlan, FftPlan, Transform2d};
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_forward");
    for &n in &[256usize, 1024, 4096] {
        let plan = FftPlan::new(n);
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(black_box(&mut buf));
                buf
            })
        });
    }
    group.finish();
}

fn bench_dct(c: &mut Criterion) {
    let mut group = c.benchmark_group("dct2");
    for &n in &[256usize, 1024] {
        let plan = DctPlan::new(n);
        let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| plan.dct2(black_box(&data)))
        });
    }
    group.finish();
}

fn bench_transform2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson_transform_round");
    group.sample_size(20);
    for &n in &[64usize, 128, 256] {
        let mut t = Transform2d::new(n, n);
        let data: Vec<f64> = (0..n * n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                // One density-solve's worth of transforms: analysis + three
                // syntheses.
                let mut a = data.clone();
                t.dct2(&mut a);
                let mut psi = a.clone();
                t.dct3(&mut psi);
                let mut fx = a.clone();
                t.dst3_x(&mut fx);
                let mut fy = a;
                t.dst3_y(&mut fy);
                (psi, fx, fy)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft, bench_dct, bench_transform2d);
criterion_main!(benches);
