//! Timings of the per-iteration mGP kernels — charge deposit + Poisson
//! solve (57 % of mGP in Fig. 7) and the WA wirelength gradient (29 %) —
//! each in its serial form and under the deterministic parallel execution
//! layer, with the speedup reported per kernel.
//!
//! Thread count comes from `EPLACE_BENCH_THREADS` (default: all hardware
//! threads). On a single-core host the parallel variants measure pure
//! chunking/spawn overhead, so expect speedups ≤ 1 there.

use eplace_bench::timing::{bench, report_speedup};
use eplace_benchgen::BenchmarkConfig;
use eplace_core::PlacementProblem;
use eplace_density::{grid_dimension, DensityGrid};
use eplace_exec::ExecConfig;
use eplace_geometry::Point;
use eplace_wirelength::{SmoothWirelength, WaModel};
use std::hint::black_box;

fn bench_exec() -> ExecConfig {
    match std::env::var("EPLACE_BENCH_THREADS") {
        Ok(v) => ExecConfig::with_threads(v.parse().expect("bad EPLACE_BENCH_THREADS")),
        Err(_) => ExecConfig::auto(),
    }
}

fn bench_density_solve(exec: ExecConfig) {
    println!("density_deposit_solve");
    for &cells in &[1_000usize, 4_000, 16_000] {
        let design = BenchmarkConfig::ispd05_like("bench", 7)
            .scale(cells)
            .generate();
        let problem = PlacementProblem::all_movables(&design);
        let dim = grid_dimension(problem.len(), 16, 512);
        let mut grid = DensityGrid::new(design.region, dim, dim, 1.0);
        for cell in design.cells.iter().filter(|c| c.fixed) {
            grid.add_fixed(cell.rect());
        }
        let pos = problem.positions(&design);
        let mut run = |label: &str, exec: ExecConfig| {
            grid.set_exec(exec);
            bench(&format!("{label}/{cells}"), 20, || {
                grid.deposit(black_box(&problem.objects), black_box(&pos));
                grid.solve();
                grid.overflow()
            })
        };
        let serial = run("serial", ExecConfig::serial());
        let parallel = run(&format!("threads={}", exec.threads()), exec);
        report_speedup(&format!("density/{cells}"), &serial, &parallel);
    }
}

fn bench_wa_gradient(exec: ExecConfig) {
    println!("wa_gradient");
    for &cells in &[1_000usize, 4_000, 16_000] {
        let design = BenchmarkConfig::ispd05_like("bench", 8)
            .scale(cells)
            .generate();
        let mut wa = WaModel::new(&design);
        let pos: Vec<Point> = design.cells.iter().map(|c| c.pos).collect();
        let mut grad = vec![Point::ORIGIN; pos.len()];
        let mut run = |label: &str, exec: ExecConfig, wa: &mut WaModel| {
            wa.set_exec(exec);
            bench(&format!("{label}/{cells}"), 20, || {
                wa.gradient(black_box(&design), black_box(&pos), 10.0, &mut grad)
            })
        };
        let serial = run("serial", ExecConfig::serial(), &mut wa);
        let parallel = run(&format!("threads={}", exec.threads()), exec, &mut wa);
        report_speedup(&format!("wa_gradient/{cells}"), &serial, &parallel);
    }
}

fn main() {
    let exec = bench_exec();
    bench_density_solve(exec);
    bench_wa_gradient(exec);
}
