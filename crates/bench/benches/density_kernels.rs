//! Criterion benches of the per-iteration mGP kernels: charge deposit +
//! Poisson solve (57 % of mGP in Fig. 7) and the WA wirelength gradient
//! (29 %).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eplace_benchgen::BenchmarkConfig;
use eplace_core::PlacementProblem;
use eplace_density::{grid_dimension, DensityGrid};
use eplace_geometry::Point;
use eplace_wirelength::{SmoothWirelength, WaModel};
use std::hint::black_box;

fn bench_density_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_deposit_solve");
    group.sample_size(20);
    for &cells in &[1_000usize, 4_000] {
        let design = BenchmarkConfig::ispd05_like("bench", 7).scale(cells).generate();
        let problem = PlacementProblem::all_movables(&design);
        let dim = grid_dimension(problem.len(), 16, 512);
        let mut grid = DensityGrid::new(design.region, dim, dim, 1.0);
        for cell in design.cells.iter().filter(|c| c.fixed) {
            grid.add_fixed(cell.rect());
        }
        let pos = problem.positions(&design);
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter(|| {
                grid.deposit(black_box(&problem.objects), black_box(&pos));
                grid.solve();
                grid.overflow()
            })
        });
    }
    group.finish();
}

fn bench_wa_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("wa_gradient");
    group.sample_size(20);
    for &cells in &[1_000usize, 4_000] {
        let design = BenchmarkConfig::ispd05_like("bench", 8).scale(cells).generate();
        let mut wa = WaModel::new(&design);
        let pos: Vec<Point> = design.cells.iter().map(|c| c.pos).collect();
        let mut grad = vec![Point::ORIGIN; pos.len()];
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter(|| wa.gradient(black_box(&design), black_box(&pos), 10.0, &mut grad))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_density_solve, bench_wa_gradient);
criterion_main!(benches);
