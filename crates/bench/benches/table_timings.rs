//! Criterion timings behind the tables' "Average Runtime" rows: each placer
//! end-to-end (global placement + identical discrete finish) on one
//! ISPD-2005-like circuit.

use criterion::{criterion_group, criterion_main, Criterion};
use eplace_bench::{all_baselines, run_baseline, run_eplace};
use eplace_benchgen::BenchmarkConfig;
use eplace_core::EplaceConfig;

fn bench_placers(c: &mut Criterion) {
    let config = BenchmarkConfig::ispd05_like("adaptec1_like", 1_000).scale(400);
    let eplace_cfg = EplaceConfig::fast();
    let mut group = c.benchmark_group("table1_runtime");
    group.sample_size(10);
    group.bench_function("ePlace", |b| {
        b.iter(|| run_eplace(&config, &eplace_cfg))
    });
    for placer in all_baselines() {
        group.bench_function(placer.name(), |b| {
            b.iter(|| run_baseline(placer.as_ref(), &config, &eplace_cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_placers);
criterion_main!(benches);
