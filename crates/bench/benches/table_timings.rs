//! Timings behind the tables' "Average Runtime" rows: each placer
//! end-to-end (global placement + identical discrete finish) on one
//! ISPD-2005-like circuit.

use eplace_bench::timing::bench;
use eplace_bench::{all_baselines, run_baseline, run_eplace};
use eplace_benchgen::BenchmarkConfig;
use eplace_core::EplaceConfig;

fn main() {
    let config = BenchmarkConfig::ispd05_like("adaptec1_like", 1_000).scale(400);
    let eplace_cfg = EplaceConfig::fast();
    println!("table1_runtime");
    bench("ePlace", 10, || run_eplace(&config, &eplace_cfg));
    for placer in all_baselines() {
        bench(placer.name(), 10, || {
            run_baseline(placer.as_ref(), &config, &eplace_cfg)
        });
    }
}
