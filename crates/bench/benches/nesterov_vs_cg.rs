//! The §V-A head-to-head: ePlace's Nesterov global placement versus the
//! same eDensity cost driven by CG with line search (the FFTPL baseline).
//! The paper's claims: Nesterov converges with one gradient per iteration
//! while line search consumes >60 % of CG's runtime.

use eplace_baselines::{CgPlacer, GlobalPlacer};
use eplace_bench::timing::bench;
use eplace_benchgen::BenchmarkConfig;
use eplace_core::{
    initial_placement, insert_fillers, run_global_placement, EplaceConfig, PlacementProblem, Stage,
};

const CELLS: usize = 800;

fn main() {
    println!("global_placement");
    bench("nesterov_eplace", 10, || {
        let mut d = BenchmarkConfig::ispd05_like("vs", 9)
            .scale(CELLS)
            .generate();
        initial_placement(&mut d);
        insert_fillers(&mut d, 9);
        let problem = PlacementProblem::all_movables(&d);
        let mut trace = Vec::new();
        run_global_placement(
            &mut d,
            &problem,
            &EplaceConfig::fast(),
            Stage::Mgp,
            None,
            None,
            &mut trace,
        )
        .expect("placement diverged beyond recovery")
    });
    bench("cg_line_search_fftpl", 10, || {
        let mut d = BenchmarkConfig::ispd05_like("vs", 9)
            .scale(CELLS)
            .generate();
        CgPlacer::default().global_place(&mut d)
    });

    // One-shot line-search share report (the >60 % claim).
    let mut d = BenchmarkConfig::ispd05_like("vs", 9)
        .scale(CELLS)
        .generate();
    let r = CgPlacer::default().global_place(&mut d);
    eprintln!(
        "CG line-search share: {:.1}% of {:.2}s (paper: >60% of FFTPL runtime)",
        100.0 * r.line_search_seconds / r.seconds.max(1e-9),
        r.seconds
    );
}
