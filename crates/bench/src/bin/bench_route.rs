//! Routability scorecard on congested synthetic suites.
//!
//! Runs the full ePlace flow on ispd05-like designs under a scarce routing
//! model (half the nominal track capacity) twice per suite: once with the
//! router only (`max_rounds = 0` — score the converged placement as-is) and
//! once with the congestion-driven inflation loop enabled. Records routed
//! wirelength, total overflow, peak congestion, the overflow reduction the
//! inflation bought, and the HPWL it cost into `BENCH_route.json` at the
//! repository root.
//!
//! The file is re-parsed with the journal's own JSON reader before the
//! program exits 0, and the recorded invariants are re-checked: every score
//! finite, overflow and congestion non-negative, the with-inflation
//! overflow never above the without-inflation overflow (the loop only
//! accepts improving rounds), and the HPWL cost within the configured
//! budget. A zero exit status therefore certifies a well-formed,
//! self-consistent result.
//!
//! ```text
//! cargo run --release -p eplace-bench --bin bench_route             # full sweep
//! cargo run --release -p eplace-bench --bin bench_route -- --smoke  # one suite (CI)
//! ```
//!
//! Flags: `--smoke` (smallest suite, one seed), `--seeds N` (seeds per
//! size, default 3), `--out PATH` (output path override).

use eplace_benchgen::BenchmarkConfig;
use eplace_core::{EplaceConfig, Placer, RoutabilityConfig, RoutabilityOutcome};
use eplace_obs::json::{parse_json, JsonValue};
use eplace_obs::Record;
use eplace_route::RouteConfig;
use std::time::Instant;

const SUITE_SIZES: &[usize] = &[240, 300, 400];
const BASE_SEED: u64 = 91;
/// Track-capacity fraction of the scarce routing model the sweep scores.
const CAPACITY_SCALE: f64 = 0.5;

struct Options {
    smoke: bool,
    seeds: u64,
    out: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        seeds: 3,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--seeds" => {
                let v = args.next().expect("--seeds needs a value");
                opts.seeds = v.parse().expect("bad --seeds value");
                assert!(opts.seeds > 0, "--seeds must be positive");
            }
            "--out" => opts.out = Some(args.next().expect("--out needs a path")),
            other => {
                eprintln!("unknown flag {other}; see the module docs for usage");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn routability_config(max_rounds: usize) -> RoutabilityConfig {
    RoutabilityConfig {
        route: RouteConfig {
            capacity_scale: CAPACITY_SCALE,
            ..RouteConfig::default()
        },
        max_rounds,
        ..RoutabilityConfig::default()
    }
}

fn run_flow(cells: usize, seed: u64, max_rounds: usize) -> (RoutabilityOutcome, f64, f64) {
    let design = BenchmarkConfig::ispd05_like("bench_route", seed)
        .scale(cells)
        .generate();
    let cfg = EplaceConfig {
        routability: Some(routability_config(max_rounds)),
        ..EplaceConfig::fast()
    };
    let t = Instant::now();
    let mut placer = Placer::new(design, cfg);
    let report = placer.run().expect("ePlace flow failed on a routed suite");
    let out = report
        .routability
        .expect("routability mode was on but reported nothing");
    (out, report.final_hpwl, t.elapsed().as_secs_f64())
}

/// One arm's JSON fragment: the routed scorecard plus the flow HPWL.
fn arm_json(name: &str, out: &RoutabilityOutcome, hpwl: f64, seconds: f64) -> String {
    format!(
        "\"{name}\":{{\"routed_wl\":{},\"total_overflow\":{},\"peak_congestion\":{},\
         \"overflowed_bins\":{},\"rounds\":{},\"inflated_cells\":{},\"hpwl\":{hpwl},\
         \"hpwl_cost\":{},\"seconds\":{seconds}}}",
        out.final_report.routed_wl,
        out.final_report.total_overflow,
        out.final_report.peak_congestion,
        out.final_report.overflowed_bins,
        out.rounds,
        out.inflated_cells,
        out.hpwl_cost(),
    )
}

fn bench_suite(cells: usize, seed: u64) -> String {
    let (without, hpwl_without, secs_without) = run_flow(cells, seed, 0);
    let (with, hpwl_with, secs_with) =
        run_flow(cells, seed, RoutabilityConfig::default().max_rounds);
    let reduction = with.overflow_reduction();
    let fragments = [
        arm_json("without_inflation", &without, hpwl_without, secs_without),
        arm_json("with_inflation", &with, hpwl_with, secs_with),
    ];
    Record::new("suite")
        .u64_field("cells", cells as u64)
        .u64_field("seed", seed)
        .f64_field("overflow_reduction", reduction)
        .raw_field("arms", &format!("{{{}}}", fragments.join(",")))
        .into_line()
}

/// Fails with a message unless `doc` parses and every recorded scorecard
/// satisfies the router's invariants.
fn validate(doc: &str) -> Result<(), String> {
    let parsed = parse_json(doc).map_err(|e| format!("BENCH_route.json is not valid JSON: {e}"))?;
    let suites = parsed
        .get("suites")
        .and_then(JsonValue::as_array)
        .ok_or("missing suites array")?;
    if suites.is_empty() {
        return Err("suites array is empty".into());
    }
    let budget = RoutabilityConfig::default().max_hpwl_cost;
    for suite in suites {
        let arms = suite.get("arms").ok_or("suite missing arms object")?;
        let mut overflow = [0.0f64; 2];
        for (slot, name) in ["without_inflation", "with_inflation"].iter().enumerate() {
            let arm = arms
                .get(name)
                .ok_or_else(|| format!("missing arm {name}"))?;
            for field in [
                "routed_wl",
                "total_overflow",
                "peak_congestion",
                "hpwl",
                "hpwl_cost",
            ] {
                let v = arm
                    .get(field)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("{name} missing numeric {field}"))?;
                if !v.is_finite() {
                    return Err(format!("{name} {field} = {v} is not finite"));
                }
            }
            let wl = arm.get("routed_wl").and_then(JsonValue::as_f64).unwrap();
            if wl <= 0.0 {
                return Err(format!("{name} routed_wl = {wl} must be positive"));
            }
            overflow[slot] = arm
                .get("total_overflow")
                .and_then(JsonValue::as_f64)
                .unwrap();
            if overflow[slot] < 0.0 {
                return Err(format!("{name} total_overflow = {} < 0", overflow[slot]));
            }
            let cost = arm.get("hpwl_cost").and_then(JsonValue::as_f64).unwrap();
            if cost > budget + 1e-9 {
                return Err(format!(
                    "{name} hpwl_cost = {cost} exceeds the {budget} budget"
                ));
            }
        }
        if overflow[1] > overflow[0] + 1e-9 {
            return Err(format!(
                "inflation made routing worse ({} -> {}): the loop must only accept improving rounds",
                overflow[0], overflow[1]
            ));
        }
    }
    Ok(())
}

fn default_out_path() -> std::path::PathBuf {
    // crates/bench → repository root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_route.json")
}

fn main() {
    let opts = parse_args();
    let sizes: &[usize] = if opts.smoke {
        &SUITE_SIZES[..1]
    } else {
        SUITE_SIZES
    };
    let seeds = if opts.smoke { 1 } else { opts.seeds };

    println!("bench_route: {} size(s) x {seeds} seed(s)", sizes.len());
    let mut suites = Vec::new();
    for &cells in sizes {
        for s in 0..seeds {
            let seed = BASE_SEED + s;
            let line = bench_suite(cells, seed);
            println!("  cells={cells} seed={seed} done");
            suites.push(line);
        }
    }

    let mut suites_json = String::from("[");
    suites_json.push_str(&suites.join(","));
    suites_json.push(']');
    let doc = Record::new("bench_route")
        .str_field("suite_family", "ispd05_like")
        .f64_field("capacity_scale", CAPACITY_SCALE)
        .u64_field("seeds_per_size", seeds)
        .bool_field("smoke", opts.smoke)
        .raw_field("suites", &suites_json)
        .into_line();

    if let Err(e) = validate(&doc) {
        eprintln!("bench_route: self-validation failed: {e}");
        std::process::exit(1);
    }

    let out = opts
        .out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_out_path);
    eplace_obs::write_atomic(&out, format!("{doc}\n").as_bytes())
        .expect("writing BENCH_route.json");
    println!("bench_route: validated result written to {}", out.display());
}
