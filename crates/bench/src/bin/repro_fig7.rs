//! Reproduces **Figure 7**: the runtime breakdown of the flow — outer ring
//! (mIP/mGP/mLG/cGP/cDP shares) and the mGP-internal split (density /
//! wirelength / other; paper: 57 % / 29 % / 14 %).
//!
//! Usage: `repro_fig7 [--scale N] [--circuits K]`

use eplace_bench::{design_after_full_flow, parse_args};
use eplace_benchgen::BenchmarkSuite;
use eplace_core::{EplaceConfig, Stage};

fn main() {
    let (scale, _, extra) = parse_args(150);
    let take: usize = extra
        .iter()
        .find(|(k, _)| k == "circuits")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(4);
    let suite: Vec<_> = BenchmarkSuite::mms(scale).into_iter().take(take).collect();
    eprintln!(
        "Figure 7 reproduction over {} MMS-like circuits",
        suite.len()
    );
    let cfg = EplaceConfig::fast();
    let mut stage_totals: Vec<(Stage, f64)> = vec![
        (Stage::Mip, 0.0),
        (Stage::Mgp, 0.0),
        (Stage::Mlg, 0.0),
        (Stage::FillerOnly, 0.0),
        (Stage::Cgp, 0.0),
        (Stage::Cdp, 0.0),
    ];
    let mut density = 0.0;
    let mut wirelength = 0.0;
    let mut other = 0.0;
    let mut phases: std::collections::BTreeMap<String, (u64, f64)> = Default::default();
    for config in &suite {
        eprintln!("  {} ...", config.name);
        let (_, report) = design_after_full_flow(config, &cfg);
        for (stage, acc) in stage_totals.iter_mut() {
            *acc += report.stage_seconds(*stage);
        }
        density += report.mgp_profile.density_seconds;
        wirelength += report.mgp_profile.wirelength_seconds;
        other += report.mgp_profile.other_seconds;
        for p in &report.phase_times {
            let e = phases.entry(p.name.clone()).or_insert((0, 0.0));
            e.0 += p.calls;
            e.1 += p.seconds;
        }
    }
    let total: f64 = stage_totals.iter().map(|(_, s)| s).sum();
    println!("stage,seconds,share_pct");
    for (stage, s) in &stage_totals {
        println!("{stage},{s:.3},{:.1}", 100.0 * s / total.max(1e-12));
    }
    let mgp_total = (density + wirelength + other).max(1e-12);
    println!(
        "mgp_density,{density:.3},{:.1}",
        100.0 * density / mgp_total
    );
    println!(
        "mgp_wirelength,{wirelength:.3},{:.1}",
        100.0 * wirelength / mgp_total
    );
    println!("mgp_other,{other:.3},{:.1}", 100.0 * other / mgp_total);
    // The same breakdown as measured by the observability spans — phase
    // rows here come from the span tree, not the driver's stopwatches, so
    // they cross-check each other.
    println!("obs_phase,calls,seconds,share_pct");
    for (name, (calls, seconds)) in &phases {
        println!(
            "{name},{calls},{seconds:.3},{:.1}",
            100.0 * seconds / total.max(1e-12)
        );
    }
    eprintln!(
        "paper shape: mGP dominates the flow; inside mGP density 57% / wirelength 29% / other 14%"
    );
}
