//! Absolute-suboptimality benchmark on PEKO-style known-optima suites.
//!
//! Every other quality number in this repo is relative (ePlace vs. a
//! baseline on a netlist whose optimum nobody knows). This harness runs
//! each placer on `BenchmarkConfig::peko_like` designs, whose construction
//! carries a `KnownOptimum` certificate, and records the **absolute**
//! suboptimality ratio `final legal HPWL / certified optimal HPWL` per
//! placer and suite size into `BENCH_peko.json` at the repository root.
//!
//! Every placer gets the identical downstream treatment (Abacus
//! legalization + detail passes, exactly what the ePlace flow's cDP runs),
//! so the ratios compare global-placement quality on equal footing.
//!
//! The file is re-parsed with the journal's own JSON reader before the
//! program exits 0, and every recorded ratio is checked to be finite and
//! ≥ 1 (a "ratio" below 1 would mean a legal placement beat a certified
//! optimum — a broken certificate, not a good placer). A zero exit status
//! therefore certifies a well-formed, self-consistent result.
//!
//! ```text
//! cargo run --release -p eplace-bench --bin bench_peko              # full sweep
//! cargo run --release -p eplace-bench --bin bench_peko -- --smoke   # smallest suite (CI)
//! ```
//!
//! Flags: `--smoke` (smallest suite only), `--seeds N` (seeds per size,
//! default 3), `--out PATH` (output path override).

use eplace_baselines::{CgPlacer, GlobalPlacer, MincutPlacer};
use eplace_benchgen::{BenchmarkConfig, KnownOptimum};
use eplace_core::{EplaceConfig, Placer};
use eplace_legalize::{detail_place, global_swap, legalize, legalize_abacus};
use eplace_netlist::Design;
use eplace_obs::json::{parse_json, JsonValue};
use eplace_obs::Record;
use std::time::Instant;

const SUITE_SIZES: &[usize] = &[240, 600, 1_500];
const BASE_SEED: u64 = 9_000;

struct Options {
    smoke: bool,
    seeds: u64,
    out: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        seeds: 3,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--seeds" => {
                let v = args.next().expect("--seeds needs a value");
                opts.seeds = v.parse().expect("bad --seeds value");
                assert!(opts.seeds > 0, "--seeds must be positive");
            }
            "--out" => opts.out = Some(args.next().expect("--out needs a path")),
            other => {
                eprintln!("unknown flag {other}; see the module docs for usage");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// The shared downstream finisher: the same legalization + detail stack the
/// ePlace flow's cDP applies, with the Tetris fallback on Abacus failure.
fn finish_legal(design: &mut Design) -> f64 {
    if legalize_abacus(design).is_err() {
        legalize(design).expect("even Tetris failed to legalize a half-utilization PEKO design");
    }
    detail_place(design, 1);
    global_swap(design, 1);
    detail_place(design, 1);
    design.hpwl()
}

/// One placer's JSON fragment: `"name":{"hpwl":…,"ratio":…,"seconds":…}`.
fn placer_json(name: &str, hpwl: f64, optimum: &KnownOptimum, seconds: f64) -> String {
    format!(
        "\"{name}\":{{\"hpwl\":{hpwl},\"ratio\":{},\"seconds\":{seconds}}}",
        optimum.ratio(hpwl)
    )
}

fn bench_suite(cells: usize, seed: u64) -> String {
    let config = BenchmarkConfig::peko_like(format!("peko{cells}"), seed).scale(cells);
    let (design, optimum) = config.generate_known_optimum();

    // ePlace: the full flow, which legalizes internally.
    let t = Instant::now();
    let eplace_cfg = EplaceConfig {
        known_optimum_hpwl: Some(optimum.hpwl),
        ..EplaceConfig::fast()
    };
    let mut placer = Placer::new(design, eplace_cfg);
    let report = placer.run().expect("ePlace flow failed on a PEKO suite");
    let eplace_secs = t.elapsed().as_secs_f64();
    let eplace_hpwl = report.final_hpwl;
    assert_eq!(
        report.suboptimality_ratio,
        Some(optimum.ratio(eplace_hpwl)),
        "report ratio must agree with the certificate"
    );

    // Baselines: global placement + the identical downstream finisher.
    let baselines: [Box<dyn GlobalPlacer>; 2] = [
        Box::new(CgPlacer::default()),
        Box::new(MincutPlacer::default()),
    ];
    let mut fragments = vec![placer_json("eplace", eplace_hpwl, &optimum, eplace_secs)];
    for placer in baselines {
        let (mut design, _) = config.generate_known_optimum();
        let t = Instant::now();
        placer.global_place(&mut design);
        design.remove_fillers();
        let hpwl = finish_legal(&mut design);
        fragments.push(placer_json(
            placer.name(),
            hpwl,
            &optimum,
            t.elapsed().as_secs_f64(),
        ));
    }

    Record::new("suite")
        .u64_field("cells", cells as u64)
        .u64_field("seed", seed)
        .f64_field("optimal_hpwl", optimum.hpwl)
        .raw_field("placers", &format!("{{{}}}", fragments.join(",")))
        .into_line()
}

/// Fails with a message unless `doc` parses and every recorded ratio is a
/// finite number ≥ 1 (within rounding) from a positive certified optimum.
fn validate(doc: &str) -> Result<(), String> {
    let parsed = parse_json(doc).map_err(|e| format!("BENCH_peko.json is not valid JSON: {e}"))?;
    let suites = parsed
        .get("suites")
        .and_then(JsonValue::as_array)
        .ok_or("missing suites array")?;
    if suites.is_empty() {
        return Err("suites array is empty".into());
    }
    for suite in suites {
        let optimum = suite
            .get("optimal_hpwl")
            .and_then(JsonValue::as_f64)
            .ok_or("suite missing numeric optimal_hpwl")?;
        if !optimum.is_finite() || optimum <= 0.0 {
            return Err(format!(
                "optimal_hpwl = {optimum} is not finite and positive"
            ));
        }
        let placers = suite.get("placers").ok_or("suite missing placers object")?;
        for name in ["eplace", "cg-fftpl", "mincut"] {
            let entry = placers
                .get(name)
                .ok_or_else(|| format!("missing placer entry {name}"))?;
            let ratio = entry
                .get("ratio")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("{name} missing numeric ratio"))?;
            if !ratio.is_finite() {
                return Err(format!("{name} ratio = {ratio} is not finite"));
            }
            if ratio < 1.0 - 1e-9 {
                return Err(format!(
                    "{name} ratio = {ratio} < 1: a legal placement cannot beat a valid certificate"
                ));
            }
            if ratio > 1e3 {
                return Err(format!("{name} ratio = {ratio} is degenerate"));
            }
        }
    }
    Ok(())
}

fn default_out_path() -> std::path::PathBuf {
    // crates/bench → repository root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_peko.json")
}

fn main() {
    let opts = parse_args();
    let sizes: &[usize] = if opts.smoke {
        &SUITE_SIZES[..1]
    } else {
        SUITE_SIZES
    };

    println!(
        "bench_peko: {} size(s) x {} seed(s)",
        sizes.len(),
        opts.seeds
    );
    let mut suites = Vec::new();
    for &cells in sizes {
        for s in 0..opts.seeds {
            let seed = BASE_SEED + s;
            let line = bench_suite(cells, seed);
            println!("  cells={cells} seed={seed} done");
            suites.push(line);
        }
    }

    let mut suites_json = String::from("[");
    suites_json.push_str(&suites.join(","));
    suites_json.push(']');
    let doc = Record::new("bench_peko")
        .str_field("suite_family", "peko_like")
        .u64_field("seeds_per_size", opts.seeds)
        .bool_field("smoke", opts.smoke)
        .raw_field("suites", &suites_json)
        .into_line();

    if let Err(e) = validate(&doc) {
        eprintln!("bench_peko: self-validation failed: {e}");
        std::process::exit(1);
    }

    let out = opts
        .out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_out_path);
    eplace_obs::write_atomic(&out, format!("{doc}\n").as_bytes()).expect("writing BENCH_peko.json");
    println!("bench_peko: validated result written to {}", out.display());
}
