//! Reproduces **Figure 3**: snapshots of mGP progression (W and O at
//! selected iterations, optionally with full position dumps for plotting).
//!
//! Usage: `repro_fig3 [--scale N] [--snapshots K]`

use eplace_bench::{design_after_full_flow, parse_args};
use eplace_benchgen::BenchmarkConfig;
use eplace_core::{EplaceConfig, Stage};

fn main() {
    let (scale, _, extra) = parse_args(400);
    let snapshots: usize = extra
        .iter()
        .find(|(k, _)| k == "snapshots")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(6);
    let config = BenchmarkConfig::mms_like("adaptec1_mms", 3_000, 1.0, 12).scale(scale);
    eprintln!("Figure 3 reproduction on {}", config.name);
    let (_, report) = design_after_full_flow(&config, &EplaceConfig::fast());
    let mgp: Vec<_> = report
        .trace
        .iter()
        .filter(|r| r.stage == Stage::Mgp)
        .collect();
    println!("snapshot,iteration,W,O,overflow");
    for s in 0..snapshots {
        let idx = if snapshots <= 1 {
            0
        } else {
            (s * (mgp.len() - 1)) / (snapshots - 1)
        };
        let r = mgp[idx];
        println!(
            "{s},{},{:.4e},{:.4e},{:.4}",
            r.iteration, r.hpwl, r.overlap, r.overflow
        );
    }
    eprintln!(
        "paper shape (Fig. 3a-f): W rises from the overlapped quadratic optimum while O falls by ~2x by the final iteration"
    );
}
