//! Reproduces the paper's three ablation claims:
//!
//! * **§V-C (backtracking)** — disabling BkTrk costs wirelength (paper:
//!   +43.12 % average on MMS, one outright failure; 1.037 backtracks per
//!   iteration with it on).
//! * **§V-D (preconditioner)** — disabling the `|E_i| + λq_i`
//!   preconditioner makes macros bounce and costs wirelength (paper: nine
//!   failures, +24.63 % on the survivors).
//! * **§VI-B (filler-only phase)** — disabling the 20-iteration filler
//!   relocation before cGP costs wirelength (paper: +6.53 %).
//!
//! A "failure" here is a run whose mGP does not reach the overflow target
//! within the iteration cap or whose legalization fails.
//!
//! Usage: `repro_ablation [--scale N] [--which bktrk|precond|filler|all] [--circuits K]`

use eplace_bench::{parse_args, run_eplace};
use eplace_benchgen::{BenchmarkConfig, BenchmarkSuite};
use eplace_core::EplaceConfig;

struct Ablation {
    key: &'static str,
    paper: &'static str,
    make: fn(&EplaceConfig) -> EplaceConfig,
}

const ABLATIONS: &[Ablation] = &[
    Ablation {
        key: "bktrk",
        paper: "+43.12% WL, 1 failure (paper §V-C)",
        make: |base| EplaceConfig {
            enable_backtracking: false,
            ..base.clone()
        },
    },
    Ablation {
        key: "precond",
        paper: "+24.63% WL, 9 failures (paper §V-D)",
        make: |base| EplaceConfig {
            enable_preconditioner: false,
            ..base.clone()
        },
    },
    Ablation {
        key: "filler",
        paper: "+6.53% WL (paper §VI-B)",
        make: |base| EplaceConfig {
            enable_filler_phase: false,
            ..base.clone()
        },
    },
];

fn main() {
    let (scale, _, extra) = parse_args(120);
    let which = extra
        .iter()
        .find(|(k, _)| k == "which")
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| "all".into());
    let take: usize = extra
        .iter()
        .find(|(k, _)| k == "circuits")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(6);
    let suite: Vec<BenchmarkConfig> = BenchmarkSuite::mms(scale).into_iter().take(take).collect();
    let base = EplaceConfig::fast();

    // Reference runs with everything enabled.
    eprintln!("reference runs ({} circuits)...", suite.len());
    let reference: Vec<_> = suite
        .iter()
        .map(|c| {
            eprintln!("  {} ...", c.name);
            (c.name.clone(), run_eplace(c, &base))
        })
        .collect();
    // Backtracks-per-iteration statistic (paper: 1.037).
    let mut bk_sum = 0.0;
    let mut bk_n = 0;
    for config in &suite {
        let design = config.generate();
        let mut placer = eplace_core::Placer::new(design, base.clone());
        let report = placer.run().expect("placement diverged beyond recovery");
        bk_sum += report.mgp_backtracks_per_iteration;
        bk_n += 1;
    }
    println!(
        "backtracks_per_iteration,{:.3}  (paper: 1.037)",
        bk_sum / bk_n as f64
    );

    println!("ablation,circuit,hpwl_full,hpwl_ablated,delta_pct,failed");
    for ablation in ABLATIONS {
        if which != "all" && which != ablation.key {
            continue;
        }
        eprintln!("ablation `{}` ...", ablation.key);
        let cfg = (ablation.make)(&base);
        let mut deltas = Vec::new();
        let mut failures = 0;
        for (config, (name, full)) in suite.iter().zip(&reference) {
            eprintln!("  {} ...", name);
            let ablated = run_eplace(config, &cfg);
            let failed = !ablated.ok;
            if failed {
                failures += 1;
            } else {
                deltas.push(ablated.hpwl / full.hpwl - 1.0);
            }
            println!(
                "{},{},{:.4e},{:.4e},{:+.2},{}",
                ablation.key,
                name,
                full.hpwl,
                ablated.hpwl,
                100.0 * (ablated.hpwl / full.hpwl - 1.0),
                failed
            );
        }
        let avg = if deltas.is_empty() {
            0.0
        } else {
            100.0 * deltas.iter().sum::<f64>() / deltas.len() as f64
        };
        println!(
            "{},SUMMARY,avg_delta_pct,{avg:+.2},failures,{failures}",
            ablation.key
        );
        eprintln!("  paper: {}", ablation.paper);
    }
}
