//! Reproduces **Figure 6**: standard cells + fillers before/after cGP —
//! W and O entering and leaving the second global placement.
//!
//! Usage: `repro_fig6 [--scale N]`

use eplace_bench::{design_after_full_flow, parse_args};
use eplace_benchgen::BenchmarkConfig;
use eplace_core::{EplaceConfig, Stage};

fn main() {
    let (scale, _, _) = parse_args(400);
    let config = BenchmarkConfig::mms_like("adaptec1_mms", 3_000, 1.0, 12).scale(scale);
    eprintln!("Figure 6 reproduction on {}", config.name);
    let (_, report) = design_after_full_flow(&config, &EplaceConfig::fast());
    let cgp: Vec<_> = report
        .trace
        .iter()
        .filter(|r| r.stage == Stage::Cgp)
        .collect();
    let first = cgp.first().expect("cGP ran");
    let last = cgp.last().expect("cGP ran");
    println!("phase,iteration,W,O,overflow");
    println!(
        "before,{},{:.4e},{:.4e},{:.4}",
        first.iteration, first.hpwl, first.overlap, first.overflow
    );
    println!(
        "after,{},{:.4e},{:.4e},{:.4}",
        last.iteration, last.hpwl, last.overlap, last.overflow
    );
    eprintln!(
        "paper shape (Fig. 6, ADAPTEC1): W 64.36e6 -> 63.04e6 (net improvement), overlap roughly level then resolved"
    );
}
