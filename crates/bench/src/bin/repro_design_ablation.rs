//! Ablations of *this reproduction's* own design choices (the ones
//! DESIGN.md §5 calls out), complementing `repro_ablation` which covers the
//! paper's ablations:
//!
//! * **legalizer** — Abacus (cluster-optimal) vs Tetris (frontier greedy)
//!   for cDP;
//! * **grid resolution** — density grid at ½×, 1× and 2× the
//!   `√(#objects)` rule of §II;
//! * **γ anchoring** — the wirelength smoothing γ at 0.5×/1×/2× the
//!   schedule's bin-width anchor (via the grid clamp).
//!
//! Usage: `repro_design_ablation [--scale N]`

use eplace_bench::{parse_args, run_eplace};
use eplace_benchgen::BenchmarkConfig;
use eplace_core::EplaceConfig;

fn main() {
    let (scale, _, _) = parse_args(300);
    let config = BenchmarkConfig::mms_like("design_abl", 4_000, 1.0, 8).scale(scale);
    let base = EplaceConfig::fast();

    println!("variant,hpwl,overflow,seconds");
    let run = |name: &str, cfg: &EplaceConfig| {
        eprintln!("  {name} ...");
        let r = run_eplace(&config, cfg);
        println!("{name},{:.4e},{:.4},{:.2}", r.hpwl, r.overflow, r.seconds);
    };

    run("baseline(abacus)", &base);
    run(
        "tetris_legalizer",
        &EplaceConfig {
            use_abacus: false,
            ..base.clone()
        },
    );
    // Grid resolution: the clamps force the dimension away from √n.
    run(
        "grid_half",
        &EplaceConfig {
            grid_max: 32,
            ..base.clone()
        },
    );
    run(
        "grid_double",
        &EplaceConfig {
            grid_min: 128,
            grid_max: 256,
            ..base.clone()
        },
    );
    // Steplength safety margin ε.
    run(
        "epsilon_0.5",
        &EplaceConfig {
            epsilon: 0.5,
            ..base.clone()
        },
    );
    run(
        "max_backtracks_1",
        &EplaceConfig {
            max_backtracks: 1,
            ..base.clone()
        },
    );
    eprintln!("expected shapes: abacus ≤ tetris HPWL; half-resolution grid loses quality; double costs runtime at similar quality");
}
