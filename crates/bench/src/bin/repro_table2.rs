//! Reproduces **Table II**: scaled HPWL (`HPWL·(1+0.01·τ_avg)`) on the
//! ISPD-2006-like suite with contest density targets, plus the
//! density-overflow comparison row.
//!
//! Usage: `repro_table2 [--scale N] [--circuit NAME]`

use eplace_bench::{filter_suite, format_table, parse_args, run_suite, Metric};
use eplace_benchgen::BenchmarkSuite;
use eplace_core::EplaceConfig;

fn main() {
    let (scale, circuit, _) = parse_args(150);
    let suite = filter_suite(BenchmarkSuite::ispd06(scale), &circuit);
    eprintln!(
        "Table II reproduction: {} circuits at base scale {scale}",
        suite.len()
    );
    let rows = run_suite(&suite, &EplaceConfig::fast());
    println!("\nTable II — scaled HPWL, ISPD-2006-like suite (lower is better)");
    println!("paper shape: ePlace best sHPWL and lowest overflow of the analytic placers\n");
    print!("{}", format_table(&rows, Metric::ScaledHpwl));
}
