//! Reproduces **Figure 2**: total HPWL and object overlap versus iteration
//! across the mGP → mLG → cGP stages of the flow on an MMS-like ADAPTEC1.
//! Emits the full per-iteration CSV on stdout.
//!
//! Usage: `repro_fig2 [--scale N]`

use eplace_bench::{design_after_full_flow, parse_args};
use eplace_benchgen::BenchmarkConfig;
use eplace_core::{trace_to_csv, EplaceConfig, Stage};

fn main() {
    let (scale, _, _) = parse_args(400);
    let config = BenchmarkConfig::mms_like("adaptec1_mms", 3_000, 1.0, 12).scale(scale);
    eprintln!("Figure 2 reproduction on {} ({} cells)", config.name, scale);
    let (_, report) = design_after_full_flow(&config, &EplaceConfig::fast());
    print!("{}", trace_to_csv(&report.trace));
    // Stage summary (the figure's annotated phases).
    for stage in [Stage::Mgp, Stage::FillerOnly, Stage::Cgp] {
        let recs: Vec<_> = report.trace.iter().filter(|r| r.stage == stage).collect();
        if let (Some(first), Some(last)) = (recs.first(), recs.last()) {
            eprintln!(
                "{stage}: {} iters, HPWL {:.4e} -> {:.4e}, overlap {:.4e} -> {:.4e}",
                recs.len(),
                first.hpwl,
                last.hpwl,
                first.overlap,
                last.overlap
            );
        }
    }
    eprintln!(
        "paper shape: overlap falls monotonically through mGP; cGP briefly trades overlap for wirelength, then re-converges"
    );
}
