//! Reproduces **Table III**: HPWL on the MMS-like mixed-size suite (movable
//! macros; the full mIP→mGP→mLG→cGP→cDP flow for ePlace, identical
//! mLG/cDP finish for the baselines).
//!
//! Usage: `repro_table3 [--scale N] [--circuit NAME]`

use eplace_bench::{filter_suite, format_table, parse_args, run_suite, Metric};
use eplace_benchgen::BenchmarkSuite;
use eplace_core::EplaceConfig;

fn main() {
    let (scale, circuit, _) = parse_args(120);
    let suite = filter_suite(BenchmarkSuite::mms(scale), &circuit);
    eprintln!(
        "Table III reproduction: {} circuits at base scale {scale}",
        suite.len()
    );
    let rows = run_suite(&suite, &EplaceConfig::fast());
    println!("\nTable III — (scaled) HPWL, MMS-like mixed-size suite (lower is better)");
    println!("paper shape: ePlace best on most rows with ~1x runtime of the nonlinear family\n");
    print!("{}", format_table(&rows, Metric::Hpwl));
}
