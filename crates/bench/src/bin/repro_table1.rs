//! Reproduces **Table I**: HPWL on the ISPD-2005-like suite (std-cell only,
//! ρ_t = 1.0; mLG/cGP disabled automatically because macros are fixed).
//!
//! Usage: `repro_table1 [--scale N] [--circuit NAME]`

use eplace_bench::{filter_suite, format_table, parse_args, run_suite, Metric};
use eplace_benchgen::BenchmarkSuite;
use eplace_core::EplaceConfig;

fn main() {
    let (scale, circuit, _) = parse_args(150);
    let suite = filter_suite(BenchmarkSuite::ispd05(scale), &circuit);
    eprintln!(
        "Table I reproduction: {} circuits at base scale {scale}",
        suite.len()
    );
    let rows = run_suite(&suite, &EplaceConfig::fast());
    println!("\nTable I — HPWL, ISPD-2005-like suite (lower is better)");
    println!("paper shape: ePlace best on all rows; quadratic ~3-5% worse; mincut worst\n");
    print!("{}", format_table(&rows, Metric::Hpwl));
}
