//! Reproduces **Figure 5**: macro distribution before/after mLG — the
//! (W, D, O_m) triple with O_m = 0 after legalization.
//!
//! Usage: `repro_fig5 [--scale N]`

use eplace_bench::{design_after_full_flow, parse_args};
use eplace_benchgen::BenchmarkConfig;
use eplace_core::EplaceConfig;

fn main() {
    let (scale, _, _) = parse_args(400);
    let config = BenchmarkConfig::mms_like("adaptec1_mms", 3_000, 1.0, 12).scale(scale);
    eprintln!("Figure 5 reproduction on {}", config.name);
    let (_, report) = design_after_full_flow(&config, &EplaceConfig::fast());
    let mlg = report.mlg.expect("mixed-size flow runs mLG");
    println!("phase,W,D,Om");
    println!(
        "before,{:.4e},{:.4e},{:.4e}",
        mlg.wirelength_before, mlg.coverage_before, mlg.macro_overlap_before
    );
    println!(
        "after,{:.4e},{:.4e},{:.4e}",
        mlg.wirelength_after, mlg.coverage_after, mlg.macro_overlap_after
    );
    println!(
        "legalized,{},outer_iterations,{},accept_rate,{:.3}",
        mlg.legalized,
        mlg.outer_iterations,
        mlg.moves_accepted as f64 / mlg.moves_attempted.max(1) as f64
    );
    eprintln!("paper shape (Fig. 5, ADAPTEC1): W 63.37e6 -> 64.36e6 (small rise), O_m 6.1e5 -> 0");
}
