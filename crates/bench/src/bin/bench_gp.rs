//! Reproducible global-placement hot-path benchmark.
//!
//! Runs the steady-state mGP iteration — Nesterov step, WA wirelength
//! gradient, density deposit + spectral Poisson solve — on benchgen suites
//! at three sizes, records the median per-iteration wall time plus the
//! per-phase span breakdown from `eplace-obs`, and writes `BENCH_gp.json`
//! at the repository root. A separate `transform` record times one Poisson
//! transform round at grid 256 under both spectral engines and reports the
//! v2/v1 median speedup. The file is re-parsed with the journal's own
//! JSON reader before the program exits 0, so a zero exit status certifies
//! a well-formed, finite result — and fails (exit 1) when the engine-v2
//! transform round is slower than v1 (speedup < 1.0).
//!
//! ```text
//! cargo run --release --bin bench_gp              # full 3-size sweep
//! cargo run --release --bin bench_gp -- --smoke   # smallest suite only (CI)
//! ```
//!
//! Flags: `--smoke` (1 000-cell suite only), `--samples N` (timed
//! iterations per suite, default 30), `--out PATH` (output path override).
//! `EPLACE_BENCH_THREADS` selects the execution layer width (default:
//! serial, the configuration the golden trace pins down).

use eplace_bench::timing::bench;
use eplace_benchgen::BenchmarkConfig;
use eplace_core::{
    initial_placement, insert_fillers, EplaceCost, NesterovOptimizer, PlacementProblem,
};
use eplace_density::grid_dimension;
use eplace_exec::ExecConfig;
use eplace_obs::json::{parse_json, JsonValue};
use eplace_obs::{Obs, Record};
use eplace_spectral::{SpectralEngine, Transform2d};
use std::fmt::Write as _;

const SUITE_SIZES: &[usize] = &[1_000, 4_000, 16_000];
const WARMUP_STEPS: usize = 3;
/// Grid side for the engine-v1-vs-v2 transform-round comparison — the
/// production mGP grid size the spectral-engine-v2 speedup target is
/// quoted at.
const TRANSFORM_GRID: usize = 256;

struct Options {
    smoke: bool,
    samples: usize,
    out: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        samples: 30,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--samples" => {
                let v = args.next().expect("--samples needs a value");
                opts.samples = v.parse().expect("bad --samples value");
            }
            "--out" => opts.out = Some(args.next().expect("--out needs a path")),
            other => {
                eprintln!("unknown flag {other}; see the module docs for usage");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn bench_exec() -> ExecConfig {
    match std::env::var("EPLACE_BENCH_THREADS") {
        Ok(v) => ExecConfig::with_threads(v.parse().expect("bad EPLACE_BENCH_THREADS")),
        Err(_) => ExecConfig::serial(),
    }
}

/// Serializes a snapshot's spans as a JSON object keyed by span path.
/// Span paths are `'static` identifiers joined with `/`, so they need no
/// escaping; the final self-validation parse would catch a violation.
fn spans_to_json(obs: &Obs) -> String {
    let mut s = String::from("{");
    for (i, span) in obs.snapshot().spans.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let mean_ns = span.total_ns as f64 / span.calls.max(1) as f64;
        let _ = write!(
            s,
            "\"{}\":{{\"calls\":{},\"total_ns\":{},\"mean_ns\":{mean_ns}}}",
            span.path, span.calls, span.total_ns
        );
    }
    s.push('}');
    s
}

/// Benchmarks steady-state `step` calls on one suite size and returns the
/// suite's JSON object (as a raw string for [`Record::raw_field`]).
fn bench_suite(cells: usize, samples: usize, exec: ExecConfig) -> String {
    let mut design = BenchmarkConfig::ispd05_like("bench-gp", 42)
        .scale(cells)
        .generate();
    initial_placement(&mut design);
    insert_fillers(&mut design, 42);
    let problem = PlacementProblem::all_movables(&design);
    let dim = grid_dimension(problem.len(), 16, 512);
    let mut cost = EplaceCost::new(&design, &problem, dim, dim, true);
    cost.set_exec(exec);
    let pos = problem.positions(&design);
    cost.init_lambda(&pos);
    let perturb = 0.1 * cost.bin_width();
    let mut optimizer = NesterovOptimizer::new(pos, &mut cost, 0.95, 10, true, perturb);

    // Size every pooled buffer before timing or span collection starts.
    for _ in 0..WARMUP_STEPS {
        optimizer.step(&mut cost);
    }

    // Spans are collected only over the timed region (plus the harness's
    // own short warmup), so `mean_ns` reflects steady state.
    let obs = Obs::metrics();
    cost.set_obs(obs.clone());
    optimizer.set_obs(obs.clone());
    let m = bench(&format!("gp_step/{cells}"), samples, || {
        optimizer.step(&mut cost)
    });

    Record::new("suite")
        .u64_field("cells", cells as u64)
        .u64_field("objects", problem.len() as u64)
        .u64_field("grid", dim as u64)
        .u64_field("samples", m.samples as u64)
        .u64_field("median_step_ns", m.median.as_nanos() as u64)
        .u64_field("min_step_ns", m.min.as_nanos() as u64)
        .u64_field("mean_step_ns", m.mean.as_nanos() as u64)
        .raw_field("spans", &spans_to_json(&obs))
        .into_line()
}

/// Benchmarks one Poisson-solve transform round (analysis DCT-II plus the
/// three syntheses) at `dim × dim` under both spectral engines and returns
/// the comparison as a JSON object. The `speedup` field is the engine-v2
/// gate: `validate` fails the run when it drops below 1.0.
///
/// v1 and v2 samples are interleaved (one of each per iteration) so that
/// slow machine drift — thermal throttling, a neighbour landing on the
/// core — hits both engines equally and cancels out of the ratio.
fn bench_transform(dim: usize, samples: usize, exec: ExecConfig) -> String {
    let data: Vec<f64> = (0..dim * dim)
        .map(|i| ((i * 7 % 13) as f64) - 6.0)
        .collect();
    let engine = |kind: SpectralEngine| {
        Transform2d::new(dim, dim)
            .unwrap_or_else(|e| panic!("{e}"))
            .with_exec(exec)
            .with_engine(kind)
    };
    let mut v1 = engine(SpectralEngine::V1);
    let mut v2 = engine(SpectralEngine::V2);
    let round = |t: &mut Transform2d, data: &[f64]| {
        let mut a = data.to_vec();
        t.dct2(&mut a);
        let mut psi = a.clone();
        t.dct3(&mut psi);
        let mut fx = a.clone();
        t.dst3_x(&mut fx);
        let mut fy = a;
        t.dst3_y(&mut fy);
        (psi, fx, fy)
    };
    // Warm up both engines (plan caches, scratch pools, branch predictors)
    // before any timed sample.
    std::hint::black_box(round(&mut v1, &data));
    std::hint::black_box(round(&mut v2, &data));
    let mut v1_ns = Vec::with_capacity(samples);
    let mut v2_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = std::time::Instant::now();
        std::hint::black_box(round(&mut v1, &data));
        v1_ns.push(t0.elapsed().as_nanos() as u64);
        let t0 = std::time::Instant::now();
        std::hint::black_box(round(&mut v2, &data));
        v2_ns.push(t0.elapsed().as_nanos() as u64);
    }
    let median = |ns: &mut Vec<u64>| {
        ns.sort_unstable();
        ns[ns.len() / 2]
    };
    let v1_median = median(&mut v1_ns);
    let v2_median = median(&mut v2_ns);
    let speedup = v1_median as f64 / v2_median.max(1) as f64;
    eprintln!(
        "transform_round/{dim}x{dim}: v1 {:.1} µs, v2 {:.1} µs, speedup {speedup:.2}x",
        v1_median as f64 / 1e3,
        v2_median as f64 / 1e3,
    );
    Record::new("transform")
        .u64_field("grid", dim as u64)
        .u64_field("samples", samples as u64)
        .u64_field("v1_median_ns", v1_median)
        .u64_field("v2_median_ns", v2_median)
        .f64_field("speedup", speedup)
        .into_line()
}

/// Fails with a message unless `doc` parses and every suite's timings are
/// finite and positive.
fn validate(doc: &str) -> Result<(), String> {
    let parsed = parse_json(doc).map_err(|e| format!("BENCH_gp.json is not valid JSON: {e}"))?;
    let suites = parsed
        .get("suites")
        .and_then(JsonValue::as_array)
        .ok_or("missing suites array")?;
    if suites.is_empty() {
        return Err("suites array is empty".into());
    }
    for suite in suites {
        for key in ["median_step_ns", "min_step_ns", "mean_step_ns"] {
            let v = suite
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("suite missing numeric {key}"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{key} = {v} is not finite and positive"));
            }
        }
        let spans = suite.get("spans").ok_or("suite missing spans object")?;
        for path in ["nesterov_step", "nesterov_step/density_solve"] {
            let total = spans
                .get(path)
                .and_then(|s| s.get("total_ns"))
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing span {path}"))?;
            if !total.is_finite() || total <= 0.0 {
                return Err(format!("span {path} total_ns = {total} is degenerate"));
            }
        }
    }
    let transform = parsed.get("transform").ok_or("missing transform object")?;
    for key in ["v1_median_ns", "v2_median_ns"] {
        let v = transform
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("transform missing numeric {key}"))?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!("transform {key} = {v} is not finite and positive"));
        }
    }
    let speedup = transform
        .get("speedup")
        .and_then(JsonValue::as_f64)
        .ok_or("transform missing numeric speedup")?;
    if !speedup.is_finite() || speedup < 1.0 {
        return Err(format!(
            "engine v2 transform round regressed: v2/v1 speedup {speedup:.3} < 1.0"
        ));
    }
    Ok(())
}

fn default_out_path() -> std::path::PathBuf {
    // crates/bench → repository root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_gp.json")
}

fn main() {
    let opts = parse_args();
    let exec = bench_exec();
    let sizes: &[usize] = if opts.smoke {
        &SUITE_SIZES[..1]
    } else {
        SUITE_SIZES
    };

    println!(
        "bench_gp: {} suite(s), {} samples each, threads={}",
        sizes.len(),
        opts.samples,
        exec.threads()
    );
    let suites: Vec<String> = sizes
        .iter()
        .map(|&cells| bench_suite(cells, opts.samples, exec))
        .collect();
    let transform = bench_transform(TRANSFORM_GRID, opts.samples, exec);

    let mut suites_json = String::from("[");
    suites_json.push_str(&suites.join(","));
    suites_json.push(']');
    let doc = Record::new("bench_gp")
        .str_field("suite_family", "ispd05_like")
        .u64_field("threads", exec.threads() as u64)
        .u64_field("warmup_steps", WARMUP_STEPS as u64)
        .bool_field("smoke", opts.smoke)
        .raw_field("suites", &suites_json)
        .raw_field("transform", &transform)
        .into_line();

    if let Err(e) = validate(&doc) {
        eprintln!("bench_gp: self-validation failed: {e}");
        std::process::exit(1);
    }

    let out = opts
        .out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_out_path);
    eplace_obs::write_atomic(&out, format!("{doc}\n").as_bytes()).expect("writing BENCH_gp.json");
    println!("bench_gp: validated result written to {}", out.display());
}
