//! Shared harness for the `repro_*` binaries: runs every placer through an
//! identical flow on identical inputs and formats paper-style table rows.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index); this library holds the plumbing so the
//! binaries stay declarative.

pub mod timing;

use eplace_baselines::{
    measure_overflow, BellshapePlacer, CgPlacer, GlobalPlacer, MincutPlacer, QuadraticPlacer,
};
use eplace_benchgen::BenchmarkConfig;
use eplace_core::{EplaceConfig, Placer};
use eplace_legalize::{detail_place, legalize, legalize_abacus};
use eplace_mlg::legalize_macros;
use eplace_netlist::{CellKind, Design};
use std::time::Instant;

/// One placer's outcome on one circuit, with everything the tables report.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Placer name (table column).
    pub placer: String,
    /// Circuit name (table row).
    pub circuit: String,
    /// Final legalized HPWL (Tables I and III).
    pub hpwl: f64,
    /// Scaled HPWL per the ISPD-2006 protocol (Table II).
    pub scaled_hpwl: f64,
    /// Final density overflow (the tables' density-overflow rows).
    pub overflow: f64,
    /// Total flow wall-clock seconds.
    pub seconds: f64,
    /// Seconds inside line search (CG-family solvers only).
    pub line_search_seconds: f64,
    /// `true` when legalization succeeded (placers can fail, as the paper's
    /// N/A entries show).
    pub ok: bool,
}

/// Runs the full ePlace flow on a fresh copy of `config`'s circuit.
pub fn run_eplace(config: &BenchmarkConfig, eplace_cfg: &EplaceConfig) -> FlowResult {
    let design = config.generate();
    let t = Instant::now();
    let mut placer = Placer::new(design, eplace_cfg.clone());
    let report = placer.run().expect("placement diverged beyond recovery");
    let seconds = t.elapsed().as_secs_f64();
    FlowResult {
        placer: "ePlace".into(),
        circuit: config.name.clone(),
        hpwl: report.final_hpwl,
        scaled_hpwl: report.scaled_hpwl,
        overflow: report.final_overflow,
        seconds,
        line_search_seconds: 0.0,
        ok: report.legalization.is_some(),
    }
}

/// Runs a baseline global placer followed by the *same* discrete finish
/// ePlace uses (mLG when macros are movable, then legalization + detail
/// placement), so the table rows compare global-placement algorithms under
/// one protocol.
pub fn run_baseline(
    placer: &dyn GlobalPlacer,
    config: &BenchmarkConfig,
    eplace_cfg: &EplaceConfig,
) -> FlowResult {
    let mut design = config.generate();
    let t = Instant::now();
    let gp = placer.global_place(&mut design);
    let has_movable_macros = design
        .cells
        .iter()
        .any(|c| c.kind == CellKind::Macro && c.is_movable());
    if has_movable_macros {
        // Same staging as the ePlace flow: std cells freeze during mLG.
        let mut unfixed: Vec<usize> = Vec::new();
        for (i, c) in design.cells.iter_mut().enumerate() {
            if c.kind == CellKind::StdCell && !c.fixed {
                c.fixed = true;
                unfixed.push(i);
            }
        }
        legalize_macros(&mut design, &eplace_cfg.mlg);
        for &i in &unfixed {
            design.cells[i].fixed = false;
        }
    }
    let attempt = if eplace_cfg.use_abacus {
        legalize_abacus(&mut design).or_else(|_| legalize(&mut design))
    } else {
        legalize(&mut design)
    };
    let ok = match attempt {
        Ok(_) => {
            detail_place(&mut design, eplace_cfg.detail_passes);
            eplace_legalize::global_swap(&mut design, eplace_cfg.detail_passes);
            detail_place(&mut design, 1);
            true
        }
        Err(_) => false,
    };
    let seconds = t.elapsed().as_secs_f64();
    let overflow = measure_overflow(&design);
    let hpwl = design.hpwl();
    FlowResult {
        placer: placer.name().into(),
        circuit: config.name.clone(),
        hpwl,
        scaled_hpwl: hpwl * (1.0 + 0.01 * (overflow * 100.0)),
        overflow,
        seconds,
        line_search_seconds: gp.line_search_seconds,
        ok,
    }
}

/// The four baselines in table order.
pub fn all_baselines() -> Vec<Box<dyn GlobalPlacer>> {
    vec![
        Box::new(MincutPlacer::default()),
        Box::new(QuadraticPlacer::default()),
        Box::new(BellshapePlacer::default()),
        Box::new(CgPlacer::default()),
    ]
}

/// Runs every placer (baselines + ePlace) over every circuit of a suite.
pub fn run_suite(configs: &[BenchmarkConfig], eplace_cfg: &EplaceConfig) -> Vec<FlowResult> {
    let baselines = all_baselines();
    let mut rows = Vec::new();
    for config in configs {
        for b in &baselines {
            eprintln!("  [{}] {} ...", config.name, b.name());
            rows.push(run_baseline(b.as_ref(), config, eplace_cfg));
        }
        eprintln!("  [{}] ePlace ...", config.name);
        rows.push(run_eplace(config, eplace_cfg));
    }
    rows
}

/// Formats a paper-style table: circuits as rows, placers as columns, the
/// chosen metric in the cells, plus the two summary lines the paper prints
/// (average metric overhead vs ePlace, average runtime ratio vs ePlace).
pub fn format_table(results: &[FlowResult], metric: Metric) -> String {
    let mut circuits: Vec<&str> = Vec::new();
    let mut placers: Vec<&str> = Vec::new();
    for r in results {
        if !circuits.contains(&r.circuit.as_str()) {
            circuits.push(&r.circuit);
        }
        if !placers.contains(&r.placer.as_str()) {
            placers.push(&r.placer);
        }
    }
    let get = |c: &str, p: &str| results.iter().find(|r| r.circuit == c && r.placer == p);
    let mut out = String::new();
    out.push_str(&format!("{:<18}", "circuit"));
    for p in &placers {
        out.push_str(&format!("{p:>14}"));
    }
    out.push('\n');
    for c in &circuits {
        out.push_str(&format!("{c:<18}"));
        for p in &placers {
            match get(c, p) {
                Some(r) if r.ok => out.push_str(&format!("{:>14.4e}", metric.of(r))),
                Some(_) => out.push_str(&format!("{:>14}", "N/A")),
                None => out.push_str(&format!("{:>14}", "-")),
            }
        }
        out.push('\n');
    }
    // Summary lines vs ePlace (paper's "Average HPWL" / "Average Runtime").
    out.push_str(&format!("{:<18}", "avg metric vs eP"));
    for p in &placers {
        let mut ratio_sum = 0.0;
        let mut n = 0;
        for c in &circuits {
            if let (Some(r), Some(e)) = (get(c, p), get(c, "ePlace")) {
                if r.ok && e.ok && metric.of(e) > 0.0 {
                    ratio_sum += metric.of(r) / metric.of(e);
                    n += 1;
                }
            }
        }
        if n > 0 {
            out.push_str(&format!("{:>13.2}%", (ratio_sum / n as f64 - 1.0) * 100.0));
        } else {
            out.push_str(&format!("{:>14}", "-"));
        }
    }
    out.push('\n');
    out.push_str(&format!("{:<18}", "avg runtime vs eP"));
    for p in &placers {
        let mut ratio_sum = 0.0;
        let mut n = 0;
        for c in &circuits {
            if let (Some(r), Some(e)) = (get(c, p), get(c, "ePlace")) {
                if e.seconds > 0.0 {
                    ratio_sum += r.seconds / e.seconds;
                    n += 1;
                }
            }
        }
        if n > 0 {
            out.push_str(&format!("{:>13.2}x", ratio_sum / n as f64));
        } else {
            out.push_str(&format!("{:>14}", "-"));
        }
    }
    out.push('\n');
    out.push_str(&format!("{:<18}", "avg overflow vs eP"));
    for p in &placers {
        let mut ratio_sum = 0.0;
        let mut n = 0;
        for c in &circuits {
            if let (Some(r), Some(e)) = (get(c, p), get(c, "ePlace")) {
                if r.ok && e.ok && e.overflow > 1e-9 {
                    ratio_sum += r.overflow / e.overflow;
                    n += 1;
                }
            }
        }
        if n > 0 {
            out.push_str(&format!("{:>13.2}x", ratio_sum / n as f64));
        } else {
            out.push_str(&format!("{:>14}", "-"));
        }
    }
    out.push('\n');
    out
}

/// Which metric a table prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Plain HPWL (Tables I, III).
    Hpwl,
    /// Scaled HPWL (Table II).
    ScaledHpwl,
}

impl Metric {
    /// Extracts the metric from a result.
    pub fn of(self, r: &FlowResult) -> f64 {
        match self {
            Metric::Hpwl => r.hpwl,
            Metric::ScaledHpwl => r.scaled_hpwl,
        }
    }
}

/// Parses `--scale N` / `--circuit NAME` style flags from `std::env::args`,
/// returning `(scale, circuit_filter, extra)` with `default_scale` when
/// absent. Unrecognized `--key value` pairs land in `extra`.
pub fn parse_args(default_scale: usize) -> (usize, Option<String>, Vec<(String, String)>) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = default_scale;
    let mut circuit = None;
    let mut extra = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].clone();
        let value = args.get(i + 1).cloned().unwrap_or_default();
        match key.as_str() {
            "--scale" => scale = value.parse().unwrap_or(default_scale),
            "--circuit" => circuit = Some(value.clone()),
            k if k.starts_with("--") => extra.push((k.trim_start_matches("--").into(), value)),
            _ => {
                i += 1;
                continue;
            }
        }
        i += 2;
    }
    (scale, circuit, extra)
}

/// Applies the optional `--circuit` filter to a suite.
pub fn filter_suite(
    mut configs: Vec<BenchmarkConfig>,
    filter: &Option<String>,
) -> Vec<BenchmarkConfig> {
    if let Some(f) = filter {
        configs.retain(|c| c.name.contains(f.as_str()));
    }
    configs
}

/// Generates a circuit, runs mIP+mGP only (the state Figures 3/5 start
/// from), and returns the design plus the placer report. Used by the figure
/// binaries that need mid-flow states.
pub fn design_after_full_flow(
    config: &BenchmarkConfig,
    cfg: &EplaceConfig,
) -> (Design, eplace_core::PlacementReport) {
    let design = config.generate();
    let mut placer = Placer::new(design, cfg.clone());
    let report = placer.run().expect("placement diverged beyond recovery");
    (placer.into_design(), report)
}
