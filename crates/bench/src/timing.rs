//! Minimal timing harness for the `benches/` programs (criterion is
//! unavailable offline). The `[[bench]]` targets are `harness = false`, so
//! each is a plain `main()` that calls [`bench`] and prints one table row
//! per measurement; `cargo bench` runs them all.

use std::time::{Duration, Instant};

/// One measured benchmark: wall-clock stats over `samples` timed runs after
/// a short warmup.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub name: String,
    pub median: Duration,
    pub min: Duration,
    pub mean: Duration,
    pub samples: usize,
}

impl Measurement {
    /// `median(other) / median(self)` — how many times faster `self` is.
    pub fn speedup_over(&self, other: &Measurement) -> f64 {
        other.median.as_secs_f64() / self.median.as_secs_f64().max(1e-12)
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times `f` over `samples` runs (after `samples / 4 + 1` warmup runs),
/// prints a table row, and returns the stats. `black_box` the inputs inside
/// `f` where the optimizer could otherwise hoist work out of the loop.
pub fn bench<R>(name: &str, samples: usize, mut f: impl FnMut() -> R) -> Measurement {
    let samples = samples.max(3);
    for _ in 0..samples / 4 + 1 {
        std::hint::black_box(f());
    }
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(f());
        times.push(start.elapsed());
    }
    times.sort();
    let measurement = Measurement {
        name: name.to_string(),
        median: times[times.len() / 2],
        min: times[0],
        mean: times.iter().sum::<Duration>() / times.len() as u32,
        samples,
    };
    println!(
        "{:<44} median {:>12}   min {:>12}   mean {:>12}   ({} samples)",
        measurement.name,
        fmt_duration(measurement.median),
        fmt_duration(measurement.min),
        fmt_duration(measurement.mean),
        samples
    );
    measurement
}

/// Prints a `serial / parallel` comparison row from two measurements.
pub fn report_speedup(kernel: &str, serial: &Measurement, parallel: &Measurement) {
    println!(
        "{:<44} serial {:>12}   parallel {:>12}   speedup {:.2}x",
        kernel,
        fmt_duration(serial.median),
        fmt_duration(parallel.median),
        parallel.speedup_over(serial)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_stats() {
        let m = bench("spin", 5, || (0..1000).sum::<u64>());
        assert_eq!(m.samples, 5);
        assert!(m.min <= m.median);
        assert!(m.median > Duration::ZERO);
    }

    #[test]
    fn speedup_is_ratio_of_medians() {
        let a = Measurement {
            name: "a".into(),
            median: Duration::from_millis(10),
            min: Duration::from_millis(9),
            mean: Duration::from_millis(10),
            samples: 3,
        };
        let b = Measurement {
            name: "b".into(),
            median: Duration::from_millis(20),
            min: Duration::from_millis(18),
            mean: Duration::from_millis(20),
            samples: 3,
        };
        assert!((a.speedup_over(&b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn durations_format_with_unit_scaling() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(500)), "500.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00 s");
    }
}
