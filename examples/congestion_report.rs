//! Routability extension (the paper's §VIII future work): estimate routing
//! congestion with a RUDY map before and after placement, showing how
//! ePlace's spreading also evens out routing demand.
//!
//! ```sh
//! cargo run --release --example congestion_report
//! ```

use eplace_repro::benchgen::BenchmarkConfig;
use eplace_repro::core::{EplaceConfig, Placer};
use eplace_repro::density::CongestionMap;

fn main() {
    let design = BenchmarkConfig::ispd05_like("congestion", 13)
        .scale(600)
        .generate();

    let before = CongestionMap::rudy(&design, 24, 24, 1.0);
    println!("before placement (random scatter):");
    report(&before);

    let mut placer = Placer::new(design, EplaceConfig::fast());
    let run = placer.run().expect("placement diverged beyond recovery");
    println!(
        "\nplaced: HPWL {:.4e}, overflow {:.3}",
        run.final_hpwl, run.final_overflow
    );

    let after = CongestionMap::rudy(placer.design(), 24, 24, 1.0);
    println!("\nafter placement:");
    report(&after);

    println!("\ncongestion heat map (after):");
    let peak = after.peak().max(1e-12);
    for iy in (0..after.ny()).rev() {
        let line: String = (0..after.nx())
            .map(|ix| shade(after.demand_map()[iy * after.nx() + ix] / peak))
            .collect();
        println!("{line}");
    }
}

fn report(map: &CongestionMap) {
    println!("  mean demand    : {:.3}", map.mean());
    println!("  peak demand    : {:.3}", map.peak());
    println!(
        "  hotspot ratio  : {:.3} (top-10% bins / mean)",
        map.hotspot_ratio()
    );
}

fn shade(v: f64) -> char {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let k = ((v.clamp(0.0, 1.0)) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[k] as char
}
