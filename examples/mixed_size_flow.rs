//! The full mixed-size flow on an MMS-like circuit with movable macros:
//! mIP → mGP → mLG → cGP → cDP, narrated stage by stage (the scenario of
//! the paper's Figures 2–6).
//!
//! ```sh
//! cargo run --release --example mixed_size_flow
//! ```

use eplace_repro::benchgen::BenchmarkConfig;
use eplace_repro::core::{EplaceConfig, Placer, Stage};
use eplace_repro::legalize::check_legal;
use eplace_repro::netlist::{CellKind, DesignStats};

fn main() {
    let design = BenchmarkConfig::mms_like("mixed_demo", 7, 1.0, 10)
        .scale(500)
        .generate();
    println!("circuit: {}", DesignStats::of(&design));

    let mut placer = Placer::new(design, EplaceConfig::fast());
    let report = placer.run().expect("placement diverged beyond recovery");

    // mGP: the heavy lifting (Fig. 2's first phase).
    let mgp: Vec<_> = report
        .trace
        .iter()
        .filter(|r| r.stage == Stage::Mgp)
        .collect();
    println!("\n== mGP ({} iterations) ==", mgp.len());
    if let (Some(first), Some(last)) = (mgp.first(), mgp.last()) {
        println!("  HPWL    {:.4e} -> {:.4e}", first.hpwl, last.hpwl);
        println!("  overlap {:.4e} -> {:.4e}", first.overlap, last.overlap);
        println!("  tau     {:.3}    -> {:.3}", first.overflow, last.overflow);
    }

    // mLG: direct-motion annealing (Fig. 5).
    let mlg = report.mlg.as_ref().expect("mixed-size flow runs mLG");
    println!("\n== mLG ==");
    println!(
        "  W  {:.4e} -> {:.4e} (small rise expected)",
        mlg.wirelength_before, mlg.wirelength_after
    );
    println!(
        "  Om {:.4e} -> {:.4e} (zero when legalized: {})",
        mlg.macro_overlap_before, mlg.macro_overlap_after, mlg.legalized
    );

    // cGP: recover the wirelength mLG cost (Fig. 6).
    let cgp: Vec<_> = report
        .trace
        .iter()
        .filter(|r| r.stage == Stage::Cgp)
        .collect();
    println!("\n== cGP ({} iterations) ==", cgp.len());
    if let (Some(first), Some(last)) = (cgp.first(), cgp.last()) {
        println!("  HPWL {:.4e} -> {:.4e}", first.hpwl, last.hpwl);
    }

    println!("\n== cDP ==");
    println!("  final HPWL {:.4e}", report.final_hpwl);
    println!("  detail gain {:.4e}", report.detail_gain);
    println!("  legal: {:?}", check_legal(placer.design()).map(|_| "yes"));
    let frozen_macros = placer
        .design()
        .cells
        .iter()
        .filter(|c| c.kind == CellKind::Macro && c.fixed)
        .count();
    println!("  macros fixed by mLG: {frozen_macros}");
}
