//! Quickstart: generate a small ISPD-2005-like circuit, run the full ePlace
//! flow, and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use eplace_repro::benchgen::BenchmarkConfig;
use eplace_repro::core::{EplaceConfig, Placer};
use eplace_repro::legalize::check_legal;
use eplace_repro::netlist::DesignStats;

fn main() {
    // A deterministic synthetic circuit: ~500 standard cells, fixed macros,
    // an IO ring, contest-like netlist statistics.
    let design = BenchmarkConfig::ispd05_like("quickstart", 42)
        .scale(500)
        .generate();
    println!("circuit: {}", DesignStats::of(&design));
    let hpwl_scattered = design.hpwl();

    // The full flow: mIP -> mGP -> cDP (mLG/cGP are skipped automatically
    // because this suite's macros are fixed).
    let mut placer = Placer::new(design, EplaceConfig::fast());
    let report = placer.run().expect("placement diverged beyond recovery");

    println!("initial (random) HPWL : {:.4e}", hpwl_scattered);
    println!("after mIP (quadratic) : {:.4e}", report.mip.hpwl_after);
    println!("final HPWL            : {:.4e}", report.final_hpwl);
    println!("final overflow tau    : {:.3}", report.final_overflow);
    println!(
        "mGP iterations        : {} (backtracks/iter {:.3})",
        report.mgp_iterations, report.mgp_backtracks_per_iteration
    );
    println!("detail-place gain     : {:.4e}", report.detail_gain);
    for t in &report.stage_timings {
        println!("stage {:>9}: {:.3}s", t.stage.to_string(), t.seconds);
    }
    match check_legal(placer.design()) {
        Ok(()) => println!("layout is LEGAL"),
        Err(e) => println!("layout is ILLEGAL: {e}"),
    }
}
