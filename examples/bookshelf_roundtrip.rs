//! Bookshelf interchange: write a synthetic benchmark to disk in the ISPD
//! contest format, read it back with the parser, place it, and emit the
//! contest deliverable (`.pl`).
//!
//! ```sh
//! cargo run --release --example bookshelf_roundtrip
//! ```

use eplace_repro::benchgen::BenchmarkConfig;
use eplace_repro::bookshelf::{read_aux, write_aux, write_pl};
use eplace_repro::core::{EplaceConfig, Placer};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let dir = std::env::temp_dir().join("eplace_bookshelf_demo");

    // 1. Emit a benchmark the way the contest distributes them.
    let design = BenchmarkConfig::ispd06_like("demo06", 11, 0.8)
        .scale(400)
        .generate();
    let aux = write_aux(&design, &dir, "demo06")?;
    println!("wrote benchmark: {}", aux.display());
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        println!(
            "  {} ({} bytes)",
            entry.file_name().to_string_lossy(),
            entry.metadata()?.len()
        );
    }

    // 2. Read it back through the parser (round trip).
    let mut parsed = read_aux(&aux)?;
    parsed.target_density = 0.8; // ISPD 2006 ships rho_t out of band
    assert_eq!(parsed.cells.len(), design.cells.len());
    assert!((parsed.hpwl() - design.hpwl()).abs() < 1e-6 * design.hpwl());
    println!(
        "parsed back: {} cells, {} nets",
        parsed.cells.len(),
        parsed.nets.len()
    );

    // 3. Place and write the contest deliverable.
    let mut placer = Placer::new(parsed, EplaceConfig::fast());
    let report = placer.run().expect("placement diverged beyond recovery");
    println!(
        "placed: HPWL {:.4e}, scaled {:.4e}, tau {:.3}",
        report.final_hpwl, report.scaled_hpwl, report.final_overflow
    );
    let pl = dir.join("demo06_eplace.pl");
    write_pl(placer.design(), &pl)?;
    println!("wrote solution: {}", pl.display());
    Ok(())
}
