//! Visualizes the electrostatic system of §IV: deposits two clusters of
//! cells, solves the Poisson equation, and renders the potential ψ and the
//! field直 directions as ASCII maps — the intuition behind Figure 3's
//! spreading animation.
//!
//! ```sh
//! cargo run --release --example density_field
//! ```

use eplace_repro::density::{DensityGrid, DensityObject};
use eplace_repro::geometry::{Point, Rect, Size};

const N: usize = 32;

fn main() {
    let region = Rect::new(0.0, 0.0, 128.0, 128.0);
    let mut grid = DensityGrid::new(region, N, N, 1.0);

    // Two unequal clusters of charge.
    let mut objects = Vec::new();
    let mut positions = Vec::new();
    for i in 0..40 {
        objects.push(DensityObject::movable(Size::new(6.0, 6.0)));
        positions.push(Point::new(
            40.0 + (i % 5) as f64 * 2.0,
            40.0 + (i / 5) as f64 * 2.0,
        ));
    }
    for i in 0..12 {
        objects.push(DensityObject::movable(Size::new(6.0, 6.0)));
        positions.push(Point::new(
            96.0 + (i % 3) as f64 * 2.0,
            90.0 + (i / 3) as f64 * 2.0,
        ));
    }
    grid.deposit(&objects, &positions);
    grid.solve();

    println!("charge density (utilization):");
    render(grid.charge_map(), |v| shade(v / (16.0 * 4.0)));

    println!("\npotential psi (zero mean; peaks at the clusters):");
    let psi = grid.potential_map();
    let max = psi.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    render(psi, |v| shade(v / max));

    println!("\nfield direction (arrows point down the potential — the spreading force):");
    let (fx, fy) = grid.field_maps();
    for iy in (0..N).rev() {
        let mut line = String::new();
        for ix in 0..N {
            let idx = iy * N + ix;
            // Descent direction = −∇ψ.
            let (dx, dy) = (-fx[idx], -fy[idx]);
            line.push(arrow(dx, dy));
        }
        println!("{line}");
    }
    println!(
        "\noverflow tau = {:.3}; total energy N(v) = {:.4e}",
        grid.overflow(),
        grid.total_energy()
    );
}

fn render(map: &[f64], f: impl Fn(f64) -> char) {
    for iy in (0..N).rev() {
        let line: String = (0..N).map(|ix| f(map[iy * N + ix])).collect();
        println!("{line}");
    }
}

fn shade(v: f64) -> char {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let k = ((v.clamp(0.0, 1.0)) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[k] as char
}

fn arrow(dx: f64, dy: f64) -> char {
    let mag = dx.hypot(dy);
    if mag < 1e-9 {
        return '.';
    }
    let angle = dy.atan2(dx);
    const DIRS: [char; 8] = ['>', '/', '^', '\\', '<', '/', 'v', '\\'];
    let sector = ((angle + std::f64::consts::PI) / (std::f64::consts::PI / 4.0)).round() as usize;
    DIRS[(sector + 4) % 8]
}
