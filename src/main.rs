//! `eplace-repro` — command-line placer.
//!
//! Reads a Bookshelf benchmark (`.aux`), runs the full ePlace flow, writes
//! the placed `.pl`, and prints a placement report. Without `--aux` it
//! demonstrates on a generated circuit.
//!
//! ```sh
//! eplace-repro --aux adaptec1.aux --out adaptec1_eplace.pl [--rho 0.5] [--fast]
//! eplace-repro --demo 1000
//! ```

use eplace_repro::benchgen::BenchmarkConfig;
use eplace_repro::bookshelf::{read_aux, write_pl};
use eplace_repro::core::{EplaceConfig, Placer, Stage};
use eplace_repro::legalize::check_legal;
use eplace_repro::netlist::{Design, DesignStats};
use std::error::Error;
use std::process::ExitCode;

struct Args {
    aux: Option<String>,
    out: Option<String>,
    rho: Option<f64>,
    demo: usize,
    fast: bool,
    trace_csv: Option<String>,
    threads: usize,
    journal: Option<String>,
    metrics_summary: bool,
    routability: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        aux: None,
        out: None,
        rho: None,
        demo: 500,
        fast: false,
        trace_csv: None,
        threads: 1,
        journal: None,
        metrics_summary: false,
        routability: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--aux" => args.aux = Some(value("--aux")?),
            "--out" => args.out = Some(value("--out")?),
            "--rho" => {
                args.rho = Some(
                    value("--rho")?
                        .parse()
                        .map_err(|e| format!("bad --rho: {e}"))?,
                )
            }
            "--demo" => {
                args.demo = value("--demo")?
                    .parse()
                    .map_err(|e| format!("bad --demo: {e}"))?
            }
            "--fast" => args.fast = true,
            "--trace-csv" => args.trace_csv = Some(value("--trace-csv")?),
            "--journal" => args.journal = Some(value("--journal")?),
            "--metrics-summary" => args.metrics_summary = true,
            "--routability" => args.routability = true,
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: eplace-repro [--aux FILE.aux] [--out FILE.pl] [--rho RHO_T] \
                     [--demo N_CELLS] [--fast] [--trace-csv FILE] [--threads N] \
                     [--journal FILE.jsonl] [--metrics-summary] [--routability]\n\
                     \n\
                     --threads 1 (default) is the exact serial placer; N >= 2 \
                     parallelizes the kernels deterministically; 0 auto-detects.\n\
                     --journal writes one JSONL record per optimizer iteration plus \
                     an end-of-run summary (validate with the obs_check binary);\n\
                     --metrics-summary prints the per-phase runtime table after the \
                     run. Neither affects the placement result.\n\
                     --routability routes the converged placement with the built-in \
                     probabilistic global router and runs congestion-driven \
                     inflation rounds before legalization."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn load_design(args: &Args) -> Result<Design, Box<dyn Error>> {
    let mut design = match &args.aux {
        Some(path) => read_aux(path)?,
        None => {
            eprintln!(
                "no --aux given; generating a {}-cell demo circuit",
                args.demo
            );
            BenchmarkConfig::ispd05_like("demo", 42)
                .scale(args.demo)
                .generate()
        }
    };
    if let Some(rho) = args.rho {
        design.target_density = rho; // ISPD 2006 ships ρ_t out of band
    }
    Ok(design)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let design = match load_design(&args) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("{}", DesignStats::of(&design));

    let mut config = if args.fast {
        EplaceConfig::fast()
    } else {
        EplaceConfig::default()
    };
    config.threads = args.threads;
    if args.routability {
        config.routability = Some(eplace_repro::core::RoutabilityConfig::default());
    }
    if let Some(path) = &args.journal {
        config.obs = match eplace_repro::obs::Obs::to_file(path) {
            Ok(obs) => obs,
            Err(e) => {
                eprintln!("error: cannot open journal {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
    }
    let mut placer = Placer::new(design, config);
    let report = match placer.run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: placement failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("final HPWL        : {:.6e}", report.final_hpwl);
    println!("scaled HPWL       : {:.6e}", report.scaled_hpwl);
    println!("density overflow  : {:.4}", report.final_overflow);
    println!(
        "mGP               : {} iterations, converged: {}",
        report.mgp_iterations, report.mgp_converged
    );
    if let Some(mlg) = &report.mlg {
        println!(
            "mLG               : O_m {:.3e} -> {:.3e} (legal: {})",
            mlg.macro_overlap_before, mlg.macro_overlap_after, mlg.legalized
        );
    }
    if let Some(route) = &report.routability {
        println!(
            "routability       : routed WL {:.4e}, overflow {:.1} -> {:.1} tracks \
             ({} rounds, {} cells inflated, peak congestion {:.3})",
            route.final_report.routed_wl,
            route.initial.total_overflow,
            route.final_report.total_overflow,
            route.rounds,
            route.inflated_cells,
            route.final_report.peak_congestion,
        );
    }
    for stage in [
        Stage::Mip,
        Stage::Mgp,
        Stage::Mlg,
        Stage::Cgp,
        Stage::RouteRefine,
        Stage::Cdp,
    ] {
        let s = report.stage_seconds(stage);
        if s > 0.0 {
            println!("{stage:>18}: {s:.2}s");
        }
    }
    match check_legal(placer.design()) {
        Ok(()) => println!("legality          : OK"),
        Err(e) => {
            println!("legality          : VIOLATED ({e})");
        }
    }
    if args.metrics_summary {
        println!(
            "{}",
            eplace_repro::obs::render_phase_table(&report.phase_times, report.total_seconds())
        );
    }

    if let Some(path) = &args.trace_csv {
        let csv = match eplace_repro::core::trace_to_csv_checked(&report.trace) {
            Ok(csv) => csv,
            Err(e) => {
                eprintln!("error: refusing to write trace: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, csv) {
            eprintln!("error writing trace: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace written to {path}");
    }
    if let Some(out) = &args.out {
        if let Err(e) = write_pl(placer.design(), out) {
            eprintln!("error writing .pl: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("solution written to {out}");
    }
    ExitCode::SUCCESS
}
