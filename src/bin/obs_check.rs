//! `obs_check` — validates an ePlace run journal or job ledger (JSONL).
//!
//! Journal mode (default) checks that every line parses as JSON, that
//! `iter` records carry the full finite metric set, that `recovery` records
//! name a stage and reason, and that the journal ends with exactly one
//! `summary` record whose phase seconds are consistent with its total. CI
//! runs this over the journal produced by a `--journal` run.
//!
//! `--ledger` mode validates an `eplace-serve` job ledger instead: globally
//! strictly-increasing sequence numbers, every per-job event stream obeying
//! the daemon's state machine (first event `queued`, nothing after a
//! terminal `done`/`cancelled`/`quarantined`, `retry` only after `failed`,
//! …), and required fields per event (`checkpointed` carries an iteration,
//! `done` a finite HPWL). A torn final line — the one thing a SIGKILL can
//! leave behind — is tolerated, exactly as the daemon's own replay does.
//!
//! ```sh
//! eplace-repro --fast --demo 300 --journal run.jsonl
//! obs_check run.jsonl [--expect-iters N]
//! obs_check --ledger spool/ledger.jsonl
//! ```

use eplace_repro::obs::json::{parse_json, JsonValue};
use std::process::ExitCode;

struct Stats {
    iters: u64,
    recoveries: u64,
    total_seconds: f64,
    phases: usize,
}

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut expect_iters: Option<u64> = None;
    let mut ledger = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--expect-iters" => {
                let v = match it.next() {
                    Some(v) => v,
                    None => return usage("--expect-iters needs a value"),
                };
                expect_iters = match v.parse() {
                    Ok(n) => Some(n),
                    Err(e) => return usage(&format!("bad --expect-iters: {e}")),
                };
            }
            "--ledger" => ledger = true,
            "--help" | "-h" => {
                println!(
                    "usage: obs_check <journal.jsonl> [--expect-iters N] | --ledger <ledger.jsonl>"
                );
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(flag),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let Some(path) = path else {
        return usage("missing journal path");
    };
    if ledger {
        return match check_ledger(&path) {
            Ok(msg) => {
                println!("{path}: OK — {msg}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("obs_check: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match check(&path, expect_iters) {
        Ok(stats) => {
            println!(
                "{path}: OK — {} iter records, {} recoveries, {} phases, {:.3}s total",
                stats.iters, stats.recoveries, stats.phases, stats.total_seconds
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_check: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "obs_check: {msg}\nusage: obs_check <journal.jsonl> [--expect-iters N] | --ledger <ledger.jsonl>"
    );
    ExitCode::FAILURE
}

/// Allowed successor events for each job state (the daemon's state
/// machine; see DESIGN.md §13). Terminal states allow nothing.
fn ledger_successors(state: &str) -> &'static [&'static str] {
    match state {
        "" => &["queued"],
        "queued" => &["started", "cancelled", "quarantined"],
        "started" | "checkpointed" => &[
            "checkpointed",
            "done",
            "failed",
            "cancelled",
            "quarantined",
            "resumed",
        ],
        "resumed" => &["started", "resumed", "cancelled", "quarantined"],
        "failed" => &["retry", "quarantined"],
        "retry" => &["started", "cancelled", "quarantined"],
        _ => &[], // done | cancelled | quarantined: terminal
    }
}

fn check_ledger(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut states: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    let mut last_seq = 0u64;
    let mut records = 0u64;
    let mut torn = false;
    for (idx, line) in lines.iter().enumerate() {
        let no = idx + 1;
        let value = match parse_json(line) {
            Ok(v) => v,
            // A SIGKILL can tear at most the final line; the daemon had not
            // acted on it yet, so it is dropped, not an error.
            Err(_) if no == lines.len() => {
                torn = true;
                break;
            }
            Err(e) => return Err(format!("line {no}: {e}")),
        };
        if str_field(&value, "type", no)? != "job" {
            return Err(format!("line {no}: record type is not `job`"));
        }
        let seq = u64_field(&value, "seq", no)?;
        if seq <= last_seq {
            return Err(format!(
                "line {no}: seq {seq} does not increase past {last_seq}"
            ));
        }
        last_seq = seq;
        let job = str_field(&value, "job", no)?.to_string();
        let event = str_field(&value, "event", no)?;
        let state = states.entry(job.clone()).or_default();
        if !ledger_successors(state).contains(&event) {
            return Err(format!(
                "line {no}: job `{job}` cannot go `{}` -> `{event}`",
                if state.is_empty() { "<new>" } else { state }
            ));
        }
        match event {
            "started" | "failed" | "retry" => {
                let attempt = u64_field(&value, "attempt", no)?;
                if attempt == 0 {
                    return Err(format!("line {no}: attempt must be >= 1"));
                }
            }
            "checkpointed" | "resumed" => {
                u64_field(&value, "iter", no)?;
            }
            "done" => {
                finite_field(&value, "hpwl", no)?;
            }
            _ => {}
        }
        if event == "retry" {
            u64_field(&value, "backoff_ms", no)?;
        }
        if matches!(event, "failed" | "quarantined") {
            str_field(&value, "reason", no)?;
        }
        *state = event.to_string();
        records += 1;
    }
    let mut done = 0usize;
    let mut terminal = 0usize;
    for state in states.values() {
        if state == "done" {
            done += 1;
        }
        if matches!(state.as_str(), "done" | "cancelled" | "quarantined") {
            terminal += 1;
        }
    }
    Ok(format!(
        "{records} records, {} jobs ({done} done, {terminal} terminal, {} in flight){}",
        states.len(),
        states.len() - terminal,
        if torn {
            ", torn final line dropped"
        } else {
            ""
        }
    ))
}

fn check(path: &str, expect_iters: Option<u64>) -> Result<Stats, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let mut stats = Stats {
        iters: 0,
        recoveries: 0,
        total_seconds: 0.0,
        phases: 0,
    };
    let mut summaries = 0u64;
    let mut last_kind = String::new();
    for (idx, line) in text.lines().enumerate() {
        let no = idx + 1;
        let value = parse_json(line).map_err(|e| format!("line {no}: {e}"))?;
        let kind = str_field(&value, "type", no)?;
        match kind {
            "iter" => {
                str_field(&value, "stage", no)?;
                u64_field(&value, "iter", no)?;
                u64_field(&value, "backtracks", no)?;
                for key in ["hpwl", "overflow", "alpha", "lambda", "gamma"] {
                    finite_field(&value, key, no)?;
                }
                stats.iters += 1;
            }
            "recovery" => {
                str_field(&value, "stage", no)?;
                str_field(&value, "reason", no)?;
                u64_field(&value, "iter", no)?;
                stats.recoveries += 1;
            }
            "summary" => {
                summaries += 1;
                stats.total_seconds = finite_field(&value, "total_seconds", no)?;
                let phases = value
                    .get("phases")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| format!("line {no}: summary lacks a `phases` array"))?;
                stats.phases = phases.len();
                let mut covered = 0.0;
                for phase in phases {
                    str_field(phase, "name", no)?;
                    covered += finite_field(phase, "seconds", no)?;
                }
                // Children never out-time their enclosing root span (small
                // tolerance for clock granularity).
                if covered > stats.total_seconds * 1.001 + 1e-6 {
                    return Err(format!(
                        "line {no}: phase seconds {covered} exceed total {}",
                        stats.total_seconds
                    ));
                }
            }
            other => return Err(format!("line {no}: unknown record type `{other}`")),
        }
        last_kind = kind.to_string();
    }
    if summaries != 1 {
        return Err(format!(
            "expected exactly 1 summary record, found {summaries}"
        ));
    }
    if last_kind != "summary" {
        return Err(format!(
            "journal must end with the summary, ends with `{last_kind}`"
        ));
    }
    if let Some(expected) = expect_iters {
        if stats.iters != expected {
            return Err(format!(
                "expected {expected} iter records, found {}",
                stats.iters
            ));
        }
    }
    Ok(stats)
}

fn str_field<'a>(value: &'a JsonValue, key: &str, no: usize) -> Result<&'a str, String> {
    value
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("line {no}: missing string field `{key}`"))
}

fn u64_field(value: &JsonValue, key: &str, no: usize) -> Result<u64, String> {
    value
        .get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("line {no}: missing integer field `{key}`"))
}

fn finite_field(value: &JsonValue, key: &str, no: usize) -> Result<f64, String> {
    value
        .get(key)
        .and_then(JsonValue::as_f64)
        .filter(|v| v.is_finite())
        .ok_or_else(|| format!("line {no}: missing finite number field `{key}`"))
}
