//! # ePlace reproduction — umbrella crate
//!
//! This crate re-exports the whole workspace under one roof so examples,
//! integration tests and downstream users can depend on a single package.
//!
//! The reproduction implements *ePlace: Electrostatics Based Placement Using
//! Nesterov's Method* (Lu et al., DAC 2014): the eDensity electrostatic
//! density function solved spectrally, Nesterov's optimizer with Lipschitz
//! steplength prediction and backtracking, the approximated diagonal
//! preconditioner, and the full mixed-size flow mIP → mGP → mLG → cGP → cDP,
//! together with the substrates (FFT/DCT, Bookshelf parsers, benchmark
//! generator, legalizers) and baseline placers the evaluation needs.
//!
//! # Quickstart
//!
//! ```
//! use eplace_repro::benchgen::{BenchmarkConfig, BenchmarkSuite};
//! use eplace_repro::core::{EplaceConfig, Placer};
//!
//! # fn main() {
//! let design = BenchmarkConfig::ispd05_like("demo", 0)
//!     .scale(200)
//!     .generate();
//! let mut placer = Placer::new(design, EplaceConfig::fast());
//! let report = placer.run().unwrap();
//! assert!(report.final_hpwl.is_finite());
//! # }
//! ```

/// Geometric primitives ([`Point`](eplace_geometry::Point),
/// [`Rect`](eplace_geometry::Rect), …).
pub use eplace_geometry as geometry;

/// Circuit data model ([`Design`](eplace_netlist::Design), cells, nets, rows).
pub use eplace_netlist as netlist;

/// Bookshelf (ISPD contest format) reader and writer.
pub use eplace_bookshelf as bookshelf;

/// Synthetic ISPD/MMS-like benchmark generator.
pub use eplace_benchgen as benchgen;

/// FFT / DCT / DST spectral transform substrate.
pub use eplace_spectral as spectral;

/// Smooth wirelength models (weighted-average, LSE) and HPWL.
pub use eplace_wirelength as wirelength;

/// Electrostatic (eDensity) density system and Poisson solver.
pub use eplace_density as density;

/// The ePlace core: Nesterov optimizer, preconditioner, mGP/cGP flow.
pub use eplace_core as core;

/// Annealing-based macro legalizer (mLG).
pub use eplace_mlg as mlg;

/// Row legalization and detail placement (cDP substrate).
pub use eplace_legalize as legalize;

/// Baseline placers (min-cut, quadratic, bell-shape, CG).
pub use eplace_baselines as baselines;

/// Structured error taxonomy ([`EplaceError`](eplace_errors::EplaceError),
/// divergence reports, validation issues).
pub use eplace_errors as errors;

/// Observability: spans, metrics, and the JSONL run journal
/// ([`Obs`](eplace_obs::Obs)).
pub use eplace_obs as obs;

/// Routability subsystem: capacity grid, probabilistic global router with
/// A* maze fallback, routed-wirelength scoring.
pub use eplace_route as route;
